// Package skiplist implements an ordered map from (key, value) pairs of
// int64s to presence — the memtable-style ordered index structure the
// relational layer uses for range predicates over integer columns.
// Duplicate keys are supported; the composite (key, value) is unique.
//
// Operations are O(log n) expected. The list is not synchronized;
// internal/relation guards it with the owning index's mutex.
package skiplist

import (
	"fmt"

	"granulock/internal/rng"
)

const maxLevel = 24

// List is a skip list of (key, value) pairs ordered by key, then value.
type List struct {
	head  *node
	level int // highest level in use, 1-based
	size  int
	src   *rng.Source
}

type node struct {
	key, val int64
	next     []*node
}

// New returns an empty list. The seed drives tower-height coin flips
// only; any seed gives the same contents, just different shapes.
func New(seed uint64) *List {
	return &List{
		head:  &node{next: make([]*node, maxLevel)},
		level: 1,
		src:   rng.New(seed),
	}
}

// Len returns the number of pairs stored.
func (l *List) Len() int { return l.size }

// less orders by key then value.
func less(k1, v1, k2, v2 int64) bool {
	if k1 != k2 {
		return k1 < k2
	}
	return v1 < v2
}

// findPredecessors fills update with the rightmost node before
// (key, val) at every level.
func (l *List) findPredecessors(key, val int64, update []*node) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && less(x.next[i].key, x.next[i].val, key, val) {
			x = x.next[i]
		}
		update[i] = x
	}
}

// randomLevel draws a tower height with P(h ≥ k) = 2^-(k-1).
func (l *List) randomLevel() int {
	h := 1
	for h < maxLevel && l.src.Bernoulli(0.5) {
		h++
	}
	return h
}

// Insert adds (key, val); it reports false if the pair already exists.
func (l *List) Insert(key, val int64) bool {
	var update [maxLevel]*node
	l.findPredecessors(key, val, update[:])
	if next := update[0].next[0]; next != nil && next.key == key && next.val == val {
		return false
	}
	h := l.randomLevel()
	if h > l.level {
		for i := l.level; i < h; i++ {
			update[i] = l.head
		}
		l.level = h
	}
	n := &node{key: key, val: val, next: make([]*node, h)}
	for i := 0; i < h; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	l.size++
	return true
}

// Delete removes (key, val); it reports whether the pair was present.
func (l *List) Delete(key, val int64) bool {
	var update [maxLevel]*node
	l.findPredecessors(key, val, update[:])
	target := update[0].next[0]
	if target == nil || target.key != key || target.val != val {
		return false
	}
	for i := 0; i < len(target.next); i++ {
		if update[i].next[i] == target {
			update[i].next[i] = target.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.size--
	return true
}

// Contains reports whether (key, val) is present.
func (l *List) Contains(key, val int64) bool {
	var update [maxLevel]*node
	l.findPredecessors(key, val, update[:])
	next := update[0].next[0]
	return next != nil && next.key == key && next.val == val
}

// Range visits every pair with key in [from, to) in ascending (key,
// value) order, stopping early if fn returns false.
func (l *List) Range(from, to int64, fn func(key, val int64) bool) {
	if to <= from {
		return
	}
	var update [maxLevel]*node
	// Seek to the first pair with key >= from (value = MinInt64 floor).
	l.findPredecessors(from, -1<<63, update[:])
	for x := update[0].next[0]; x != nil && x.key < to; x = x.next[0] {
		if !fn(x.key, x.val) {
			return
		}
	}
}

// All visits every pair in order.
func (l *List) All(fn func(key, val int64) bool) {
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		if !fn(x.key, x.val) {
			return
		}
	}
}

// check validates internal invariants (test hook): ordering at level 0
// and that every higher level is a subsequence of level 0.
func (l *List) check() error {
	var prev *node
	count := 0
	present := make(map[*node]bool)
	for x := l.head.next[0]; x != nil; x = x.next[0] {
		if prev != nil && !less(prev.key, prev.val, x.key, x.val) {
			return fmt.Errorf("skiplist: order violated at (%d,%d)", x.key, x.val)
		}
		present[x] = true
		prev = x
		count++
	}
	if count != l.size {
		return fmt.Errorf("skiplist: size %d, counted %d", l.size, count)
	}
	for i := 1; i < l.level; i++ {
		for x := l.head.next[i]; x != nil; x = x.next[i] {
			if !present[x] {
				return fmt.Errorf("skiplist: level %d references node absent from level 0", i)
			}
			if len(x.next) <= i {
				return fmt.Errorf("skiplist: tower too short at level %d", i)
			}
		}
	}
	return nil
}
