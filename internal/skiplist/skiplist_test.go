package skiplist

import (
	"sort"
	"testing"

	"granulock/internal/rng"
)

func TestEmptyList(t *testing.T) {
	l := New(1)
	if l.Len() != 0 {
		t.Fatal("empty list nonzero length")
	}
	if l.Contains(1, 1) {
		t.Fatal("phantom element")
	}
	if l.Delete(1, 1) {
		t.Fatal("deleted from empty list")
	}
	l.Range(0, 100, func(int64, int64) bool { t.Fatal("range on empty"); return true })
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertContainsDelete(t *testing.T) {
	l := New(2)
	if !l.Insert(5, 1) {
		t.Fatal("insert failed")
	}
	if l.Insert(5, 1) {
		t.Fatal("duplicate insert accepted")
	}
	if !l.Insert(5, 2) {
		t.Fatal("same key different value rejected")
	}
	if !l.Contains(5, 1) || !l.Contains(5, 2) || l.Contains(5, 3) {
		t.Fatal("contains wrong")
	}
	if l.Len() != 2 {
		t.Fatalf("len %d", l.Len())
	}
	if !l.Delete(5, 1) {
		t.Fatal("delete failed")
	}
	if l.Delete(5, 1) {
		t.Fatal("double delete accepted")
	}
	if l.Contains(5, 1) || !l.Contains(5, 2) {
		t.Fatal("wrong pair deleted")
	}
	if err := l.check(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedIteration(t *testing.T) {
	l := New(3)
	for _, k := range []int64{5, 1, 9, 3, 7, 3} {
		l.Insert(k, k*10)
	}
	var got []int64
	l.All(func(k, v int64) bool { got = append(got, k); return true })
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("iteration out of order: %v", got)
	}
}

func TestRangeSemantics(t *testing.T) {
	l := New(4)
	for k := int64(0); k < 20; k += 2 {
		l.Insert(k, 0)
	}
	var got []int64
	l.Range(4, 12, func(k, v int64) bool { got = append(got, k); return true })
	want := []int64{4, 6, 8, 10}
	if len(got) != len(want) {
		t.Fatalf("range [4,12) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range [4,12) = %v, want %v", got, want)
		}
	}
	// Empty and inverted ranges.
	l.Range(5, 5, func(int64, int64) bool { t.Fatal("empty range visited"); return true })
	l.Range(9, 3, func(int64, int64) bool { t.Fatal("inverted range visited"); return true })
	// Early stop.
	visits := 0
	l.Range(0, 100, func(int64, int64) bool { visits++; return visits < 3 })
	if visits != 3 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestAgainstSortedReference(t *testing.T) {
	// Random operation stream against a map reference; full-state
	// comparison after every batch.
	src := rng.New(7)
	l := New(8)
	type pair struct{ k, v int64 }
	ref := map[pair]bool{}

	for batch := 0; batch < 50; batch++ {
		for op := 0; op < 100; op++ {
			p := pair{int64(src.Intn(50)), int64(src.Intn(4))}
			if src.Bernoulli(0.6) {
				if l.Insert(p.k, p.v) == ref[p] {
					t.Fatalf("insert(%v) disagreed with reference", p)
				}
				ref[p] = true
			} else {
				if l.Delete(p.k, p.v) != ref[p] {
					t.Fatalf("delete(%v) disagreed with reference", p)
				}
				delete(ref, p)
			}
		}
		if l.Len() != len(ref) {
			t.Fatalf("len %d, ref %d", l.Len(), len(ref))
		}
		if err := l.check(); err != nil {
			t.Fatal(err)
		}
		// Compare full ordered contents.
		var want []pair
		for p := range ref {
			want = append(want, p)
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].k != want[j].k {
				return want[i].k < want[j].k
			}
			return want[i].v < want[j].v
		})
		var got []pair
		l.All(func(k, v int64) bool { got = append(got, pair{k, v}); return true })
		if len(got) != len(want) {
			t.Fatalf("contents %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: position %d: %v, want %v", batch, i, got[i], want[i])
			}
		}
		// Random range query cross-check.
		from := int64(src.Intn(50))
		to := from + int64(src.Intn(20))
		wantN := 0
		for p := range ref {
			if p.k >= from && p.k < to {
				wantN++
			}
		}
		gotN := 0
		l.Range(from, to, func(int64, int64) bool { gotN++; return true })
		if gotN != wantN {
			t.Fatalf("range [%d,%d): %d, want %d", from, to, gotN, wantN)
		}
	}
}

func TestNegativeKeysAndExtremes(t *testing.T) {
	l := New(9)
	keys := []int64{-1 << 62, -5, 0, 5, 1 << 62}
	for _, k := range keys {
		l.Insert(k, 0)
	}
	var got []int64
	l.All(func(k, v int64) bool { got = append(got, k); return true })
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("order %v", got)
		}
	}
	count := 0
	l.Range(-10, 10, func(int64, int64) bool { count++; return true })
	if count != 3 {
		t.Fatalf("range over negatives counted %d", count)
	}
}

func BenchmarkInsert(b *testing.B) {
	l := New(1)
	for i := 0; i < b.N; i++ {
		l.Insert(int64(i%100000), int64(i))
	}
}

func BenchmarkRange(b *testing.B) {
	l := New(1)
	for i := int64(0); i < 100000; i++ {
		l.Insert(i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		l.Range(50000, 50100, func(int64, int64) bool { n++; return true })
	}
}
