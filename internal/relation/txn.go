package relation

import (
	"context"
	"errors"
	"fmt"

	"granulock/internal/lockmgr"
)

// ErrTxnDone reports use of a committed or aborted transaction.
var ErrTxnDone = errors.New("relation: transaction already finished")

// ErrNotFound reports a missing tuple.
var ErrNotFound = errors.New("relation: tuple not found")

// Txn is one transaction: strict two-phase locking over the database's
// hierarchical lock manager with in-memory undo, so Abort restores
// every modified row. A Txn belongs to one goroutine.
type Txn struct {
	db   *DB
	ctx  context.Context
	id   lockmgr.TxnID
	undo []undoRec
	done bool
}

// undoRec reverses one mutation.
type undoRec struct {
	table *Table
	id    int64
	// kind: column restore or tombstone restore.
	col     int
	datum   Datum
	tomb    bool
	tombOld bool
}

// Begin starts a transaction.
func (db *DB) Begin(ctx context.Context) *Txn {
	return &Txn{db: db, ctx: ctx, id: lockmgr.TxnID(db.nextTxn.Add(1))}
}

// ID returns the transaction's lock-manager identity.
func (t *Txn) ID() lockmgr.TxnID { return t.id }

// lock acquires a node path, translating deadlock victimhood.
func (t *Txn) lock(path []lockmgr.NodeID, mode lockmgr.GMode) error {
	err := t.db.locks.Lock(t.ctx, t.id, path, mode)
	if errors.Is(err, lockmgr.ErrDeadlock) {
		t.db.deadlocks.Add(1)
	}
	return err
}

// Insert appends a tuple and returns its id. The new tuple's granule is
// locked exclusively.
func (t *Txn) Insert(table *Table, tup Tuple) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if err := table.schema.conforms(tup); err != nil {
		return 0, err
	}
	id := table.next.Add(1) - 1
	if err := t.lock(t.db.granulePath(table, id), lockmgr.GModeX); err != nil {
		return 0, err
	}
	table.put(id, tup.clone(), false)
	t.undo = append(t.undo, undoRec{table: table, id: id, tomb: true, tombOld: true})
	return id, nil
}

// Get reads one tuple under a shared granule lock.
func (t *Txn) Get(table *Table, id int64) (Tuple, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if err := t.lock(t.db.granulePath(table, id), lockmgr.GModeS); err != nil {
		return nil, err
	}
	tup, ok := table.get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s[%d]", ErrNotFound, table.name, id)
	}
	return tup, nil
}

// Update overwrites one column of one tuple under an exclusive granule
// lock, recording undo.
func (t *Txn) Update(table *Table, id int64, column string, d Datum) error {
	if t.done {
		return ErrTxnDone
	}
	col, ok := table.schema.ColIndex(column)
	if !ok {
		return fmt.Errorf("relation: no column %q in %s", column, table.name)
	}
	if d.Type != table.schema.Columns[col].Type {
		return fmt.Errorf("relation: column %q expects %v, got %v", column, table.schema.Columns[col].Type, d.Type)
	}
	if err := t.lock(t.db.granulePath(table, id), lockmgr.GModeX); err != nil {
		return err
	}
	old, ok := table.setCol(id, col, d)
	if !ok {
		return fmt.Errorf("%w: %s[%d]", ErrNotFound, table.name, id)
	}
	t.undo = append(t.undo, undoRec{table: table, id: id, col: col, datum: old})
	return nil
}

// Delete tombstones a tuple under an exclusive granule lock.
func (t *Txn) Delete(table *Table, id int64) error {
	if t.done {
		return ErrTxnDone
	}
	if err := t.lock(t.db.granulePath(table, id), lockmgr.GModeX); err != nil {
		return err
	}
	if _, ok := table.get(id); !ok {
		return fmt.Errorf("%w: %s[%d]", ErrNotFound, table.name, id)
	}
	old := table.setDeleted(id, true)
	t.undo = append(t.undo, undoRec{table: table, id: id, tomb: true, tombOld: old})
	return nil
}

// RangeScan reads tuples with ids in [from, to), locking only the
// granules the range covers — the sequential-access / best-placement
// pattern of the paper (⌈span/granuleSize⌉ locks).
func (t *Txn) RangeScan(table *Table, from, to int64) ([]Tuple, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if from < 0 || to < from {
		return nil, fmt.Errorf("relation: bad range [%d, %d)", from, to)
	}
	if to == from {
		return nil, nil
	}
	for g := table.GranuleOf(from); g <= table.GranuleOf(to-1); g++ {
		if err := t.lock(t.db.granulePath(table, g*int64(table.granuleSize)), lockmgr.GModeS); err != nil {
			return nil, err
		}
	}
	var out []Tuple
	limit := min64(to, table.next.Load())
	for id := from; id < limit; id++ {
		if tup, ok := table.get(id); ok {
			out = append(out, tup)
		}
	}
	return out, nil
}

// Scan reads every live tuple under a single table-level shared lock —
// the coarse end of the granularity spectrum: one lock, no concurrency
// with any writer of the table.
func (t *Txn) Scan(table *Table, keep func(Tuple) bool) ([]Tuple, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if err := t.lock(t.db.tablePath(table), lockmgr.GModeS); err != nil {
		return nil, err
	}
	var out []Tuple
	for id := int64(0); id < table.next.Load(); id++ {
		tup, ok := table.get(id)
		if !ok {
			continue
		}
		if keep == nil || keep(tup) {
			out = append(out, tup)
		}
	}
	return out, nil
}

// Commit releases the transaction's locks, making its effects
// permanent.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	t.undo = nil
	t.db.locks.ReleaseAll(t.id)
	t.db.commits.Add(1)
	return nil
}

// Abort undoes every mutation (in reverse order) and releases the
// locks. Aborting after a deadlock error is the standard recovery: the
// victim retries with a fresh Begin.
func (t *Txn) Abort() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		if u.tomb {
			u.table.setDeleted(u.id, u.tombOld)
		} else {
			u.table.setCol(u.id, u.col, u.datum)
		}
	}
	t.undo = nil
	t.db.locks.ReleaseAll(t.id)
	t.db.aborts.Add(1)
	return nil
}

// Exec runs fn inside a transaction, committing on success, aborting
// and retrying on deadlock, and aborting on any other error.
func (db *DB) Exec(ctx context.Context, fn func(*Txn) error) error {
	for {
		txn := db.Begin(ctx)
		err := fn(txn)
		if err == nil {
			return txn.Commit()
		}
		_ = txn.Abort()
		if errors.Is(err, lockmgr.ErrDeadlock) {
			continue // victim retries
		}
		return err
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
