package relation

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// openIndexed creates accounts with an index on owner; every 10th
// account shares owner "shared".
func openIndexed(t *testing.T, n int) (*DB, *Table, *Index) {
	t.Helper()
	db := NewDB("bank")
	tbl, err := db.CreateTable("accounts", accountsSchema(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(context.Background())
	for i := 0; i < n; i++ {
		owner := fmt.Sprintf("acct%d", i)
		if i%10 == 0 {
			owner = "shared"
		}
		if _, err := txn.Insert(tbl, Tuple{StrDatum(owner), IntDatum(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	idx, err := db.CreateIndex(tbl, "owner")
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl, idx
}

func TestCreateIndexValidation(t *testing.T) {
	db := NewDB("d")
	tbl, _ := db.CreateTable("t", accountsSchema(), 1, 1)
	if _, err := db.CreateIndex(tbl, "nope"); err == nil {
		t.Fatal("index on missing column accepted")
	}
	idx, err := db.CreateIndex(tbl, "owner")
	if err != nil || idx.Column() != "owner" {
		t.Fatalf("index create: %v", err)
	}
}

func TestIndexBuildFromExistingRows(t *testing.T) {
	db, _, idx := openIndexed(t, 30)
	txn := db.Begin(context.Background())
	defer txn.Commit()
	shared, err := txn.Lookup(idx, StrDatum("shared"))
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != 3 { // ids 0, 10, 20
		t.Fatalf("lookup returned %d tuples, want 3", len(shared))
	}
	one, err := txn.Lookup(idx, StrDatum("acct7"))
	if err != nil || len(one) != 1 || one[0][1].Int != 100 {
		t.Fatalf("point lookup: %v %v", one, err)
	}
	none, err := txn.Lookup(idx, StrDatum("missing"))
	if err != nil || len(none) != 0 {
		t.Fatalf("missing lookup: %v %v", none, err)
	}
}

func TestIndexTypeChecked(t *testing.T) {
	db, _, idx := openIndexed(t, 5)
	txn := db.Begin(context.Background())
	defer txn.Abort()
	if _, err := txn.Lookup(idx, IntDatum(5)); err == nil {
		t.Fatal("wrong-typed probe accepted")
	}
}

func TestIndexMaintainedByInsert(t *testing.T) {
	db, tbl, idx := openIndexed(t, 5)
	ctx := context.Background()
	if err := db.Exec(ctx, func(txn *Txn) error {
		_, err := txn.Insert(tbl, Tuple{StrDatum("newbie"), IntDatum(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(ctx)
	defer txn.Commit()
	got, err := txn.Lookup(idx, StrDatum("newbie"))
	if err != nil || len(got) != 1 {
		t.Fatalf("insert not indexed: %v %v", got, err)
	}
}

func TestIndexMaintainedByUpdate(t *testing.T) {
	db, tbl, idx := openIndexed(t, 5)
	ctx := context.Background()
	if err := db.Exec(ctx, func(txn *Txn) error {
		return txn.Update(tbl, 2, "owner", StrDatum("renamed"))
	}); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(ctx)
	defer txn.Commit()
	if got, _ := txn.Lookup(idx, StrDatum("acct2")); len(got) != 0 {
		t.Fatalf("stale index entry survived update: %v", got)
	}
	if got, _ := txn.Lookup(idx, StrDatum("renamed")); len(got) != 1 {
		t.Fatalf("new value not indexed: %v", got)
	}
}

func TestIndexMaintainedByDelete(t *testing.T) {
	db, tbl, idx := openIndexed(t, 5)
	ctx := context.Background()
	if err := db.Exec(ctx, func(txn *Txn) error {
		return txn.Delete(tbl, 3)
	}); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(ctx)
	defer txn.Commit()
	if got, _ := txn.Lookup(idx, StrDatum("acct3")); len(got) != 0 {
		t.Fatalf("deleted tuple still indexed: %v", got)
	}
}

func TestIndexRestoredByAbort(t *testing.T) {
	db, tbl, idx := openIndexed(t, 5)
	ctx := context.Background()
	txn := db.Begin(ctx)
	if err := txn.Update(tbl, 1, "owner", StrDatum("temp")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Delete(tbl, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Insert(tbl, Tuple{StrDatum("ghost"), IntDatum(1)}); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	check := db.Begin(ctx)
	defer check.Commit()
	if got, _ := check.Lookup(idx, StrDatum("acct1")); len(got) != 1 {
		t.Fatalf("aborted update left index wrong: %v", got)
	}
	if got, _ := check.Lookup(idx, StrDatum("temp")); len(got) != 0 {
		t.Fatalf("aborted value indexed: %v", got)
	}
	if got, _ := check.Lookup(idx, StrDatum("acct2")); len(got) != 1 {
		t.Fatalf("aborted delete left index wrong: %v", got)
	}
	if got, _ := check.Lookup(idx, StrDatum("ghost")); len(got) != 0 {
		t.Fatalf("aborted insert indexed: %v", got)
	}
}

func TestIndexCardinality(t *testing.T) {
	_, _, idx := openIndexed(t, 30)
	// 27 unique owners + "shared".
	if got := idx.Cardinality(); got != 28 {
		t.Fatalf("cardinality %d, want 28", got)
	}
}

func TestSumInt(t *testing.T) {
	db, tbl, _ := openIndexed(t, 20)
	ctx := context.Background()
	txn := db.Begin(ctx)
	defer txn.Commit()
	sum, err := txn.SumInt(tbl, "balance")
	if err != nil || sum != 2000 {
		t.Fatalf("sum %d, %v", sum, err)
	}
	if _, err := txn.SumInt(tbl, "owner"); err == nil {
		t.Fatal("sum over string column accepted")
	}
	if _, err := txn.SumInt(tbl, "nope"); err == nil {
		t.Fatal("sum over missing column accepted")
	}
}

func TestIndexUnderConcurrentWriters(t *testing.T) {
	// Writers flip ownership between two values; index probes must
	// always return internally consistent results (every returned tuple
	// really has the probed owner), and the final state must match a
	// full scan.
	db, tbl, idx := openIndexed(t, 40)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := int64((w*3 + i*7) % 40)
				owner := "red"
				if (w+i)%2 == 0 {
					owner = "blue"
				}
				if err := db.Exec(ctx, func(txn *Txn) error {
					return txn.Update(tbl, id, "owner", StrDatum(owner))
				}); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if err := db.Exec(ctx, func(txn *Txn) error {
					got, err := txn.Lookup(idx, StrDatum("red"))
					if err != nil {
						return err
					}
					for _, tup := range got {
						if tup[0].Str != "red" {
							t.Errorf("lookup returned wrong owner %q", tup[0].Str)
						}
					}
					return nil
				}); err != nil {
					t.Errorf("probe: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Final cross-check: index contents equal a scan's truth.
	txn := db.Begin(ctx)
	defer txn.Commit()
	scanned, err := txn.Scan(tbl, func(tup Tuple) bool { return tup[0].Str == "red" })
	if err != nil {
		t.Fatal(err)
	}
	probed, err := txn.Lookup(idx, StrDatum("red"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned) != len(probed) {
		t.Fatalf("index (%d) and scan (%d) disagree", len(probed), len(scanned))
	}
}
