package relation_test

import (
	"context"
	"fmt"

	"granulock/internal/relation"
)

// Example runs a tiny banking schema through the relational layer:
// insert, point update, range scan and an aggregate, all under
// multigranularity two-phase locking.
func Example() {
	ctx := context.Background()
	db := relation.NewDB("bank")
	accounts, _ := db.CreateTable("accounts", relation.Schema{Columns: []relation.Column{
		{Name: "owner", Type: relation.String},
		{Name: "balance", Type: relation.Int},
	}}, 2 /* partitions */, 4 /* tuples per granule */)

	_ = db.Exec(ctx, func(txn *relation.Txn) error {
		for i := 0; i < 8; i++ {
			if _, err := txn.Insert(accounts, relation.Tuple{
				relation.StrDatum(fmt.Sprintf("acct%d", i)),
				relation.IntDatum(100),
			}); err != nil {
				return err
			}
		}
		return nil
	})

	_ = db.Exec(ctx, func(txn *relation.Txn) error {
		// A transfer: two point updates (two granule X locks at most).
		if err := txn.Update(accounts, 0, "balance", relation.IntDatum(75)); err != nil {
			return err
		}
		return txn.Update(accounts, 7, "balance", relation.IntDatum(125))
	})

	_ = db.Exec(ctx, func(txn *relation.Txn) error {
		rows, err := txn.RangeScan(accounts, 0, 4) // one granule lock
		if err != nil {
			return err
		}
		fmt.Println("first granule holds", len(rows), "accounts")
		total, err := txn.SumInt(accounts, "balance") // one table lock
		if err != nil {
			return err
		}
		fmt.Println("total balance:", total)
		return nil
	})
	// Output:
	// first granule holds 4 accounts
	// total balance: 800
}

// ExampleTxn_Abort shows undo: an aborted transaction leaves no trace.
func ExampleTxn_Abort() {
	ctx := context.Background()
	db := relation.NewDB("d")
	t, _ := db.CreateTable("t", relation.Schema{Columns: []relation.Column{
		{Name: "v", Type: relation.Int},
	}}, 1, 1)
	_ = db.Exec(ctx, func(txn *relation.Txn) error {
		_, err := txn.Insert(t, relation.Tuple{relation.IntDatum(1)})
		return err
	})

	txn := db.Begin(ctx)
	_ = txn.Update(t, 0, "v", relation.IntDatum(999))
	_ = txn.Abort()

	check := db.Begin(ctx)
	defer check.Commit()
	tup, _ := check.Get(t, 0)
	fmt.Println("value after abort:", tup[0].Int)
	// Output:
	// value after abort: 1
}
