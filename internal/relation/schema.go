// Package relation is a small relational layer over the multigranularity
// lock manager: a catalog of horizontally partitioned tables whose
// transactions lock at three levels — database, table, granule — with
// intention modes, optional lock escalation, undo-based aborts and
// deadlock-victim retry.
//
// It makes the paper's placement strategies concrete on a real system:
// a range scan touches contiguous tuples and locks ⌈span/granuleSize⌉
// granules (the best-placement formula), a set of scattered point
// operations locks ~one granule each (worst placement), and a full scan
// escalates to a single table lock (the coarse end of the granularity
// spectrum).
package relation

import "fmt"

// Type is a column type.
type Type int

const (
	// Int is a 64-bit integer column.
	Int Type = iota
	// String is a text column.
	String
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column is one schema column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// Validate checks the schema for emptiness and duplicate or unnamed
// columns.
func (s Schema) Validate() error {
	if len(s.Columns) == 0 {
		return fmt.Errorf("relation: schema has no columns")
	}
	seen := make(map[string]bool, len(s.Columns))
	for i, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("relation: column %d unnamed", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		if c.Type != Int && c.Type != String {
			return fmt.Errorf("relation: column %q has unknown type %d", c.Name, int(c.Type))
		}
		seen[c.Name] = true
	}
	return nil
}

// ColIndex returns the position of the named column.
func (s Schema) ColIndex(name string) (int, bool) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Datum is one column value, tagged by type.
type Datum struct {
	Type Type
	Int  int64
	Str  string
}

// IntDatum returns an integer datum.
func IntDatum(v int64) Datum { return Datum{Type: Int, Int: v} }

// StrDatum returns a string datum.
func StrDatum(v string) Datum { return Datum{Type: String, Str: v} }

// String renders the datum.
func (d Datum) String() string {
	switch d.Type {
	case Int:
		return fmt.Sprintf("%d", d.Int)
	case String:
		return d.Str
	default:
		return fmt.Sprintf("Datum(%d)", int(d.Type))
	}
}

// Tuple is one row; its arity and types must match the table schema.
type Tuple []Datum

// conforms checks a tuple against a schema.
func (s Schema) conforms(t Tuple) error {
	if len(t) != len(s.Columns) {
		return fmt.Errorf("relation: tuple arity %d, schema arity %d", len(t), len(s.Columns))
	}
	for i, d := range t {
		if d.Type != s.Columns[i].Type {
			return fmt.Errorf("relation: column %q expects %v, got %v", s.Columns[i].Name, s.Columns[i].Type, d.Type)
		}
	}
	return nil
}

// clone deep-copies a tuple so stored rows cannot alias caller slices.
func (t Tuple) clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}
