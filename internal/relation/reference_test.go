package relation

import (
	"context"
	"errors"
	"testing"

	"granulock/internal/rng"
)

// refDB is a naive single-threaded reference implementation of the
// relational layer's semantics: a map of live tuples plus an undo list.
// Random operation sequences are applied to both implementations and
// every observable result is compared — classic model-based testing.
type refDB struct {
	rows    map[int64][]Datum
	deleted map[int64]bool
	nextID  int64
	undo    []func()
}

func newRefDB() *refDB {
	return &refDB{rows: map[int64][]Datum{}, deleted: map[int64]bool{}}
}

func (r *refDB) insert(tup Tuple) int64 {
	id := r.nextID
	r.nextID++
	cp := append([]Datum(nil), tup...)
	r.rows[id] = cp
	r.undo = append(r.undo, func() { r.deleted[id] = true })
	r.deleted[id] = false
	return id
}

func (r *refDB) get(id int64) ([]Datum, bool) {
	tup, ok := r.rows[id]
	if !ok || r.deleted[id] {
		return nil, false
	}
	return tup, true
}

func (r *refDB) update(id int64, col int, d Datum) bool {
	if _, live := r.get(id); !live {
		return false
	}
	old := r.rows[id][col]
	r.rows[id][col] = d
	r.undo = append(r.undo, func() { r.rows[id][col] = old })
	return true
}

func (r *refDB) del(id int64) bool {
	if _, live := r.get(id); !live {
		return false
	}
	r.deleted[id] = true
	r.undo = append(r.undo, func() { r.deleted[id] = false })
	return true
}

func (r *refDB) commit() { r.undo = nil }

func (r *refDB) abort() {
	for i := len(r.undo) - 1; i >= 0; i-- {
		r.undo[i]()
	}
	r.undo = nil
}

func (r *refDB) liveCount() int {
	n := 0
	for id := range r.rows {
		if !r.deleted[id] {
			n++
		}
	}
	return n
}

// TestAgainstReferenceModel drives both implementations with the same
// random single-threaded operation stream and compares observations
// after every step and at every transaction boundary.
func TestAgainstReferenceModel(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed)
		db := NewDB("ref")
		tbl, err := db.CreateTable("t", Schema{Columns: []Column{
			{Name: "a", Type: Int},
			{Name: "b", Type: String},
		}}, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefDB()
		ctx := context.Background()
		txn := db.Begin(ctx)

		for step := 0; step < 800; step++ {
			switch src.Intn(7) {
			case 0, 1: // insert
				tup := Tuple{IntDatum(int64(src.Intn(1000))), StrDatum("s")}
				id, err := txn.Insert(tbl, tup)
				if err != nil {
					t.Fatalf("seed %d step %d: insert: %v", seed, step, err)
				}
				refID := ref.insert(tup)
				if id != refID {
					t.Fatalf("seed %d step %d: id %d vs ref %d", seed, step, id, refID)
				}
			case 2, 3: // get a random (possibly missing) id
				if ref.nextID == 0 {
					continue
				}
				id := int64(src.Intn(int(ref.nextID) + 2))
				got, err := txn.Get(tbl, id)
				want, live := ref.get(id)
				if live {
					if err != nil {
						t.Fatalf("seed %d step %d: get(%d): %v", seed, step, id, err)
					}
					if got[0].Int != want[0].Int || got[1].Str != want[1].Str {
						t.Fatalf("seed %d step %d: get(%d) = %v, want %v", seed, step, id, got, want)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("seed %d step %d: get(%d) of dead tuple: %v, %v", seed, step, id, got, err)
				}
			case 4: // update
				if ref.nextID == 0 {
					continue
				}
				id := int64(src.Intn(int(ref.nextID)))
				d := IntDatum(int64(src.Intn(1000)))
				err := txn.Update(tbl, id, "a", d)
				if ref.update(id, 0, d) {
					if err != nil {
						t.Fatalf("seed %d step %d: update(%d): %v", seed, step, id, err)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("seed %d step %d: update of dead tuple: %v", seed, step, err)
				}
			case 5: // delete
				if ref.nextID == 0 {
					continue
				}
				id := int64(src.Intn(int(ref.nextID)))
				err := txn.Delete(tbl, id)
				if ref.del(id) {
					if err != nil {
						t.Fatalf("seed %d step %d: delete(%d): %v", seed, step, id, err)
					}
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("seed %d step %d: delete of dead tuple: %v", seed, step, err)
				}
			case 6: // transaction boundary: commit or abort, then compare scans
				if src.Bernoulli(0.5) {
					if err := txn.Commit(); err != nil {
						t.Fatal(err)
					}
					ref.commit()
				} else {
					if err := txn.Abort(); err != nil {
						t.Fatal(err)
					}
					ref.abort()
				}
				check := db.Begin(ctx)
				all, err := check.Scan(tbl, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(all) != ref.liveCount() {
					t.Fatalf("seed %d step %d: scan %d rows, ref %d", seed, step, len(all), ref.liveCount())
				}
				if err := check.Commit(); err != nil {
					t.Fatal(err)
				}
				txn = db.Begin(ctx)
			}
		}
		_ = txn.Commit()
		ref.commit()

		// Final deep comparison of every tuple id ever allocated.
		final := db.Begin(ctx)
		for id := int64(0); id < ref.nextID; id++ {
			got, err := final.Get(tbl, id)
			want, live := ref.get(id)
			if live != (err == nil) {
				t.Fatalf("seed %d: liveness of %d diverged (ref %v, err %v)", seed, id, live, err)
			}
			if live && (got[0].Int != want[0].Int || got[1].Str != want[1].Str) {
				t.Fatalf("seed %d: tuple %d diverged: %v vs %v", seed, id, got, want)
			}
		}
		_ = final.Commit()
	}
}
