package relation

import (
	"fmt"
	"sync"

	"granulock/internal/lockmgr"
	"granulock/internal/skiplist"
)

// OrderedIndex is a skip-list index over one Int column, supporting
// range predicates over column *values* (RangeScan, by contrast, ranges
// over tuple ids). Maintenance is transactional like the hash index's.
type OrderedIndex struct {
	table  *Table
	column string
	col    int

	mu   sync.Mutex
	list *skiplist.List
}

// CreateOrderedIndex builds an ordered index over an Int column,
// registering it for maintenance. Like CreateIndex, build it before
// exposing the table to concurrent transactions.
func (db *DB) CreateOrderedIndex(table *Table, column string) (*OrderedIndex, error) {
	col, ok := table.schema.ColIndex(column)
	if !ok {
		return nil, fmt.Errorf("relation: no column %q in %s", column, table.name)
	}
	if table.schema.Columns[col].Type != Int {
		return nil, fmt.Errorf("relation: ordered index requires an Int column, %q is %v",
			column, table.schema.Columns[col].Type)
	}
	oidx := &OrderedIndex{
		table:  table,
		column: column,
		col:    col,
		list:   skiplist.New(uint64(col) + 1),
	}
	for id := int64(0); id < table.next.Load(); id++ {
		if tup, live := table.get(id); live {
			oidx.add(tup[col], id)
		}
	}
	table.attachIndex(oidx)
	return oidx, nil
}

// Column returns the indexed column name.
func (o *OrderedIndex) Column() string { return o.column }

// colIdx implements maintainer.
func (o *OrderedIndex) colIdx() int { return o.col }

// add implements maintainer.
func (o *OrderedIndex) add(d Datum, id int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.list.Insert(d.Int, id)
}

// remove implements maintainer.
func (o *OrderedIndex) remove(d Datum, id int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.list.Delete(d.Int, id)
}

// Len returns the number of indexed live tuples.
func (o *OrderedIndex) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.list.Len()
}

// candidates snapshots the ids with column value in [from, to).
func (o *OrderedIndex) candidates(from, to int64) []int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	var ids []int64
	o.list.Range(from, to, func(_, id int64) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// RangeLookup reads, under granule locks, every live tuple whose
// indexed column value lies in [from, to), in ascending value order.
// Candidates are re-checked after locking; like any pure granule-lock
// range predicate it does not prevent phantoms.
func (t *Txn) RangeLookup(oidx *OrderedIndex, from, to int64) ([]Tuple, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	var out []Tuple
	for _, id := range oidx.candidates(from, to) {
		if err := t.lock(t.db.granulePath(oidx.table, id), lockmgr.GModeS); err != nil {
			return nil, err
		}
		tup, live := oidx.table.get(id)
		if !live {
			continue
		}
		if v := tup[oidx.col].Int; v >= from && v < to {
			out = append(out, tup)
		}
	}
	return out, nil
}
