package relation

import (
	"context"
	"testing"
	"time"
)

// openOrdered creates accounts with an ordered index on balance;
// balances are 10·i.
func openOrdered(t *testing.T, n int) (*DB, *Table, *OrderedIndex) {
	t.Helper()
	db := NewDB("bank")
	tbl, err := db.CreateTable("accounts", accountsSchema(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(context.Background())
	for i := 0; i < n; i++ {
		if _, err := txn.Insert(tbl, Tuple{StrDatum("x"), IntDatum(int64(10 * i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	oidx, err := db.CreateOrderedIndex(tbl, "balance")
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl, oidx
}

func TestCreateOrderedIndexValidation(t *testing.T) {
	db := NewDB("d")
	tbl, _ := db.CreateTable("t", accountsSchema(), 1, 1)
	if _, err := db.CreateOrderedIndex(tbl, "nope"); err == nil {
		t.Fatal("missing column accepted")
	}
	if _, err := db.CreateOrderedIndex(tbl, "owner"); err == nil {
		t.Fatal("string column accepted")
	}
	oidx, err := db.CreateOrderedIndex(tbl, "balance")
	if err != nil || oidx.Column() != "balance" {
		t.Fatal(err)
	}
}

func TestRangeLookupOrderAndBounds(t *testing.T) {
	db, _, oidx := openOrdered(t, 20) // balances 0..190
	txn := db.Begin(context.Background())
	defer txn.Commit()
	got, err := txn.RangeLookup(oidx, 50, 120)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{50, 60, 70, 80, 90, 100, 110}
	if len(got) != len(want) {
		t.Fatalf("range returned %d tuples, want %d", len(got), len(want))
	}
	for i, tup := range got {
		if tup[1].Int != want[i] {
			t.Fatalf("position %d: balance %d, want %d (order broken?)", i, tup[1].Int, want[i])
		}
	}
	empty, err := txn.RangeLookup(oidx, 1000, 2000)
	if err != nil || len(empty) != 0 {
		t.Fatalf("out-of-range lookup: %v %v", empty, err)
	}
}

func TestOrderedIndexMaintained(t *testing.T) {
	db, tbl, oidx := openOrdered(t, 10)
	ctx := context.Background()
	if err := db.Exec(ctx, func(txn *Txn) error {
		if err := txn.Update(tbl, 0, "balance", IntDatum(9999)); err != nil {
			return err
		}
		return txn.Delete(tbl, 5) // balance 50
	}); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(ctx)
	defer txn.Commit()
	if got, _ := txn.RangeLookup(oidx, 0, 5); len(got) != 0 {
		t.Fatalf("stale entry for updated tuple: %v", got)
	}
	if got, _ := txn.RangeLookup(oidx, 9999, 10000); len(got) != 1 {
		t.Fatalf("updated value not indexed: %v", got)
	}
	if got, _ := txn.RangeLookup(oidx, 50, 51); len(got) != 0 {
		t.Fatalf("deleted tuple still indexed: %v", got)
	}
	if oidx.Len() != 9 {
		t.Fatalf("index size %d, want 9", oidx.Len())
	}
}

func TestOrderedIndexAbortRestores(t *testing.T) {
	db, tbl, oidx := openOrdered(t, 5)
	ctx := context.Background()
	txn := db.Begin(ctx)
	if err := txn.Update(tbl, 2, "balance", IntDatum(777)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	check := db.Begin(ctx)
	defer check.Commit()
	if got, _ := check.RangeLookup(oidx, 777, 778); len(got) != 0 {
		t.Fatalf("aborted value indexed: %v", got)
	}
	if got, _ := check.RangeLookup(oidx, 20, 21); len(got) != 1 {
		t.Fatalf("original value lost: %v", got)
	}
}

func TestRangeLookupTakesLocks(t *testing.T) {
	db, tbl, oidx := openOrdered(t, 20)
	ctx := context.Background()
	reader := db.Begin(ctx)
	if _, err := reader.RangeLookup(oidx, 0, 50); err != nil { // ids 0..4
		t.Fatal(err)
	}
	// A writer of a looked-up tuple must block on its granule lock.
	done := make(chan error, 1)
	go func() {
		done <- db.Exec(ctx, func(w *Txn) error {
			return w.Update(tbl, 2, "balance", IntDatum(1))
		})
	}()
	select {
	case <-done:
		t.Fatal("writer not blocked by range-lookup locks")
	case <-time.After(20 * time.Millisecond):
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
