package relation

import (
	"fmt"
	"sync"
	"sync/atomic"

	"granulock/internal/lockmgr"
)

// DB is a catalog of tables sharing one hierarchical lock manager.
// All methods are safe for concurrent use.
type DB struct {
	name  string
	locks *lockmgr.HierTable

	mu     sync.RWMutex
	tables map[string]*Table

	nextTxn atomic.Int64

	commits   atomic.Int64
	aborts    atomic.Int64
	deadlocks atomic.Int64
}

// Option configures a DB.
type Option func(*options)

type options struct {
	escalation int
}

// WithEscalation enables lock escalation at the given per-table child
// threshold (see lockmgr.WithEscalation).
func WithEscalation(threshold int) Option {
	return func(o *options) { o.escalation = threshold }
}

// NewDB creates an empty database.
func NewDB(name string, opts ...Option) *DB {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	var hopts []lockmgr.HierOption
	if o.escalation > 0 {
		hopts = append(hopts, lockmgr.WithEscalation(o.escalation))
	}
	return &DB{
		name:   name,
		locks:  lockmgr.NewHierTable(hopts...),
		tables: make(map[string]*Table),
	}
}

// Stats summarize database activity.
type Stats struct {
	Commits     int64
	Aborts      int64
	Deadlocks   int64 // victim events (each leads to an abort or retry)
	Lock        lockmgr.Stats
	Escalations int64
}

// Stats returns an activity snapshot.
func (db *DB) Stats() Stats {
	return Stats{
		Commits:     db.commits.Load(),
		Aborts:      db.aborts.Load(),
		Deadlocks:   db.deadlocks.Load(),
		Lock:        db.locks.Stats(),
		Escalations: db.locks.Escalations(),
	}
}

// Table is a horizontally partitioned tuple store. Tuple IDs are dense
// and ever-increasing; tuple id t lives in partition t mod parts and in
// lock granule t div granuleSize (contiguous granules, so sequential
// ranges need few locks — the paper's best placement).
type Table struct {
	name        string
	schema      Schema
	granuleSize int

	parts []*part
	next  atomic.Int64 // next tuple id

	idxMu   sync.Mutex
	indexes []maintainer
}

// maintainer is the transactional index-maintenance hook shared by the
// hash and ordered indexes.
type maintainer interface {
	colIdx() int
	add(d Datum, id int64)
	remove(d Datum, id int64)
}

// part is one storage partition: a dense slice of rows guarded by a
// short latch (isolation comes from the lock manager, not the latch).
type part struct {
	mu   sync.Mutex
	rows []row
}

// row is a stored tuple with a deletion tombstone.
type row struct {
	tuple   Tuple
	deleted bool
}

// CreateTable registers a new table. granuleSize is the number of
// consecutive tuples per lock granule (the locking granularity knob:
// 1 = tuple-level locking, large = coarse). parts is the number of
// storage partitions (shared-nothing nodes).
func (db *DB) CreateTable(name string, schema Schema, parts, granuleSize int) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty table name")
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if parts < 1 {
		return nil, fmt.Errorf("relation: partitions %d < 1", parts)
	}
	if granuleSize < 1 {
		return nil, fmt.Errorf("relation: granule size %d < 1", granuleSize)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("relation: table %q already exists", name)
	}
	t := &Table{name: name, schema: schema, granuleSize: granuleSize}
	t.parts = make([]*part, parts)
	for i := range t.parts {
		t.parts[i] = &part{}
	}
	db.tables[name] = t
	return t, nil
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Rows returns the number of tuple ids ever allocated (including
// deleted ones).
func (t *Table) Rows() int64 { return t.next.Load() }

// GranuleOf returns the lock granule covering tuple id.
func (t *Table) GranuleOf(id int64) int64 { return id / int64(t.granuleSize) }

// nodePath returns the root-to-granule lock path for tuple id.
func (db *DB) granulePath(t *Table, id int64) []lockmgr.NodeID {
	return []lockmgr.NodeID{
		lockmgr.NodeID(db.name),
		lockmgr.NodeID(db.name + "/" + t.name),
		lockmgr.NodeID(fmt.Sprintf("%s/%s/g%d", db.name, t.name, t.GranuleOf(id))),
	}
}

// tablePath returns the root-to-table lock path.
func (db *DB) tablePath(t *Table) []lockmgr.NodeID {
	return []lockmgr.NodeID{
		lockmgr.NodeID(db.name),
		lockmgr.NodeID(db.name + "/" + t.name),
	}
}

// locate returns the partition and in-partition index of tuple id.
func (t *Table) locate(id int64) (*part, int) {
	p := t.parts[int(id)%len(t.parts)]
	return p, int(id) / len(t.parts)
}

// get reads a stored row (latch only; callers hold the lock manager
// locks).
func (t *Table) get(id int64) (Tuple, bool) {
	if id < 0 || id >= t.next.Load() {
		return nil, false
	}
	p, idx := t.locate(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	if idx >= len(p.rows) || p.rows[idx].deleted {
		return nil, false
	}
	return p.rows[idx].tuple.clone(), true
}

// put stores a tuple at id, growing the partition as needed, and
// maintains the indexes for live stores.
func (t *Table) put(id int64, tup Tuple, deleted bool) {
	p, idx := t.locate(id)
	p.mu.Lock()
	for len(p.rows) <= idx {
		p.rows = append(p.rows, row{deleted: true})
	}
	p.rows[idx] = row{tuple: tup, deleted: deleted}
	p.mu.Unlock()
	if !deleted {
		t.forIndexes(func(ix maintainer) { ix.add(tup[ix.colIdx()], id) })
	}
}

// setCol overwrites one column of a stored row, returning the previous
// datum, and maintains any index on that column.
func (t *Table) setCol(id int64, col int, d Datum) (Datum, bool) {
	p, idx := t.locate(id)
	p.mu.Lock()
	if idx >= len(p.rows) || p.rows[idx].deleted {
		p.mu.Unlock()
		return Datum{}, false
	}
	old := p.rows[idx].tuple[col]
	p.rows[idx].tuple[col] = d
	p.mu.Unlock()
	t.forIndexes(func(ix maintainer) {
		if ix.colIdx() == col {
			ix.remove(old, id)
			ix.add(d, id)
		}
	})
	return old, true
}

// setDeleted flips a row's tombstone, returning the previous flag, and
// adds or removes the row's index entries accordingly.
func (t *Table) setDeleted(id int64, deleted bool) bool {
	p, idx := t.locate(id)
	p.mu.Lock()
	if idx >= len(p.rows) {
		p.mu.Unlock()
		return true
	}
	old := p.rows[idx].deleted
	p.rows[idx].deleted = deleted
	tup := p.rows[idx].tuple
	p.mu.Unlock()
	if old != deleted && tup != nil {
		t.forIndexes(func(ix maintainer) {
			if deleted {
				ix.remove(tup[ix.colIdx()], id)
			} else {
				ix.add(tup[ix.colIdx()], id)
			}
		})
	}
	return old
}
