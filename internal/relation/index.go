package relation

import (
	"fmt"
	"sync"

	"granulock/internal/lockmgr"
)

// Index is a hash secondary index over one column of a table, mapping a
// datum to the set of live tuple ids carrying it. Index maintenance is
// transactional: inserts, updates and deletes adjust it, and aborts
// roll the adjustments back together with the data.
//
// Lookups go through the same granule locks as base-table reads: an
// index probe locks the granules of the matching tuples (a scattered
// point-access pattern — the paper's worst placement), not the whole
// table, which is exactly why fine granularity pays off for selective
// index access while full scans prefer one coarse lock.
type Index struct {
	table  *Table
	column string
	col    int

	mu      sync.Mutex
	buckets map[indexKey]map[int64]struct{}
}

// indexKey is a comparable rendering of a datum.
type indexKey struct {
	t Type
	i int64
	s string
}

func keyOf(d Datum) indexKey {
	return indexKey{t: d.Type, i: d.Int, s: d.Str}
}

// CreateIndex builds a hash index over column of table, registering it
// for maintenance. Building scans the current rows without locks;
// create indexes before exposing the table to transactions (the usual
// DDL discipline of a simple system).
func (db *DB) CreateIndex(table *Table, column string) (*Index, error) {
	col, ok := table.schema.ColIndex(column)
	if !ok {
		return nil, fmt.Errorf("relation: no column %q in %s", column, table.name)
	}
	idx := &Index{
		table:   table,
		column:  column,
		col:     col,
		buckets: make(map[indexKey]map[int64]struct{}),
	}
	for id := int64(0); id < table.next.Load(); id++ {
		if tup, live := table.get(id); live {
			idx.add(tup[col], id)
		}
	}
	table.attachIndex(idx)
	return idx, nil
}

// attachIndex registers an index for maintenance.
func (t *Table) attachIndex(idx maintainer) {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	t.indexes = append(t.indexes, idx)
}

// forIndexes visits the table's indexes.
func (t *Table) forIndexes(fn func(maintainer)) {
	t.idxMu.Lock()
	idxs := append([]maintainer(nil), t.indexes...)
	t.idxMu.Unlock()
	for _, idx := range idxs {
		fn(idx)
	}
}

// Column returns the indexed column name.
func (idx *Index) Column() string { return idx.column }

// colIdx implements maintainer.
func (idx *Index) colIdx() int { return idx.col }

// add records id under value.
func (idx *Index) add(value Datum, id int64) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	k := keyOf(value)
	set := idx.buckets[k]
	if set == nil {
		set = make(map[int64]struct{}, 1)
		idx.buckets[k] = set
	}
	set[id] = struct{}{}
}

// remove drops id from under value.
func (idx *Index) remove(value Datum, id int64) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	k := keyOf(value)
	if set := idx.buckets[k]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(idx.buckets, k)
		}
	}
}

// ids returns the candidate tuple ids for value, sorted order not
// guaranteed.
func (idx *Index) ids(value Datum) []int64 {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	set := idx.buckets[keyOf(value)]
	out := make([]int64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// Cardinality returns the number of distinct indexed values.
func (idx *Index) Cardinality() int {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return len(idx.buckets)
}

// Lookup reads, under granule locks, every live tuple whose indexed
// column equals value — a scattered point-access pattern (the paper's
// worst placement), which is why selective index access wants fine
// granules. Candidates are re-checked after locking (the index is a
// hint; the base table is the truth), so concurrent updates cannot
// produce false positives. Like all pure granule locking, the probe
// does not prevent phantoms: a concurrent insert of a matching tuple
// committed after the candidate snapshot may be missed.
func (t *Txn) Lookup(idx *Index, value Datum) ([]Tuple, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if value.Type != idx.table.schema.Columns[idx.col].Type {
		return nil, fmt.Errorf("relation: index %s.%s expects %v, got %v",
			idx.table.name, idx.column, idx.table.schema.Columns[idx.col].Type, value.Type)
	}
	var out []Tuple
	for _, id := range idx.ids(value) {
		if err := t.lock(t.db.granulePath(idx.table, id), lockmgr.GModeS); err != nil {
			return nil, err
		}
		tup, live := idx.table.get(id)
		if !live {
			continue
		}
		if keyOf(tup[idx.col]) == keyOf(value) {
			out = append(out, tup)
		}
	}
	return out, nil
}

// SumInt aggregates an Int column over every live tuple, under a single
// table-level shared lock (the coarse-granularity aggregate of the
// paper's range-query discussion).
func (t *Txn) SumInt(table *Table, column string) (int64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	col, ok := table.schema.ColIndex(column)
	if !ok {
		return 0, fmt.Errorf("relation: no column %q in %s", column, table.name)
	}
	if table.schema.Columns[col].Type != Int {
		return 0, fmt.Errorf("relation: column %q is not Int", column)
	}
	if err := t.lock(t.db.tablePath(table), lockmgr.GModeS); err != nil {
		return 0, err
	}
	var sum int64
	for id := int64(0); id < table.next.Load(); id++ {
		if tup, live := table.get(id); live {
			sum += tup[col].Int
		}
	}
	return sum, nil
}
