package relation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"granulock/internal/lockmgr"
)

func accountsSchema() Schema {
	return Schema{Columns: []Column{
		{Name: "owner", Type: String},
		{Name: "balance", Type: Int},
	}}
}

// openBank creates a db with one "accounts" table holding n rows of
// balance 100 each.
func openBank(t *testing.T, n, parts, granuleSize int, opts ...Option) (*DB, *Table) {
	t.Helper()
	db := NewDB("bank", opts...)
	tbl, err := db.CreateTable("accounts", accountsSchema(), parts, granuleSize)
	if err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(context.Background())
	for i := 0; i < n; i++ {
		if _, err := txn.Insert(tbl, Tuple{StrDatum(fmt.Sprintf("acct%d", i)), IntDatum(100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestSchemaValidation(t *testing.T) {
	bad := []Schema{
		{},
		{Columns: []Column{{Name: "", Type: Int}}},
		{Columns: []Column{{Name: "a", Type: Int}, {Name: "a", Type: Int}}},
		{Columns: []Column{{Name: "a", Type: Type(9)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %d accepted", i)
		}
	}
	if err := accountsSchema().Validate(); err != nil {
		t.Fatal(err)
	}
	if idx, ok := accountsSchema().ColIndex("balance"); !ok || idx != 1 {
		t.Fatal("ColIndex broken")
	}
	if _, ok := accountsSchema().ColIndex("nope"); ok {
		t.Fatal("phantom column found")
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB("d")
	if _, err := db.CreateTable("", accountsSchema(), 1, 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := db.CreateTable("t", Schema{}, 1, 1); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := db.CreateTable("t", accountsSchema(), 0, 1); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := db.CreateTable("t", accountsSchema(), 1, 0); err == nil {
		t.Fatal("zero granule size accepted")
	}
	if _, err := db.CreateTable("t", accountsSchema(), 2, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", accountsSchema(), 2, 10); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, ok := db.Table("t"); !ok {
		t.Fatal("table lookup failed")
	}
	if _, ok := db.Table("missing"); ok {
		t.Fatal("phantom table found")
	}
}

func TestInsertGetRoundTrip(t *testing.T) {
	db, tbl := openBank(t, 10, 3, 4)
	txn := db.Begin(context.Background())
	tup, err := txn.Get(tbl, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tup[0].Str != "acct7" || tup[1].Int != 100 {
		t.Fatalf("tuple %v", tup)
	}
	if _, err := txn.Get(tbl, 999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing tuple error %v", err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTypeChecking(t *testing.T) {
	db, tbl := openBank(t, 1, 1, 1)
	txn := db.Begin(context.Background())
	defer txn.Abort()
	if _, err := txn.Insert(tbl, Tuple{IntDatum(1), IntDatum(2)}); err == nil {
		t.Fatal("wrong column type accepted")
	}
	if _, err := txn.Insert(tbl, Tuple{StrDatum("x")}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := txn.Update(tbl, 0, "balance", StrDatum("oops")); err == nil {
		t.Fatal("type-mismatched update accepted")
	}
	if err := txn.Update(tbl, 0, "nope", IntDatum(1)); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestUpdateAndDelete(t *testing.T) {
	db, tbl := openBank(t, 5, 2, 2)
	ctx := context.Background()
	if err := db.Exec(ctx, func(txn *Txn) error {
		if err := txn.Update(tbl, 2, "balance", IntDatum(250)); err != nil {
			return err
		}
		return txn.Delete(tbl, 4)
	}); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(ctx)
	defer txn.Commit()
	tup, err := txn.Get(tbl, 2)
	if err != nil || tup[1].Int != 250 {
		t.Fatalf("update lost: %v %v", tup, err)
	}
	if _, err := txn.Get(tbl, 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted tuple visible: %v", err)
	}
	if err := txn.Delete(tbl, 4); !errors.Is(err, ErrNotFound) {
		t.Fatal("double delete accepted")
	}
}

func TestAbortRestoresEverything(t *testing.T) {
	db, tbl := openBank(t, 5, 2, 2)
	ctx := context.Background()
	txn := db.Begin(ctx)
	if err := txn.Update(tbl, 1, "balance", IntDatum(0)); err != nil {
		t.Fatal(err)
	}
	if err := txn.Delete(tbl, 2); err != nil {
		t.Fatal(err)
	}
	id, err := txn.Insert(tbl, Tuple{StrDatum("ghost"), IntDatum(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := txn.Abort(); err != nil {
		t.Fatal(err)
	}
	check := db.Begin(ctx)
	defer check.Commit()
	tup, err := check.Get(tbl, 1)
	if err != nil || tup[1].Int != 100 {
		t.Fatalf("update not undone: %v %v", tup, err)
	}
	if _, err := check.Get(tbl, 2); err != nil {
		t.Fatalf("delete not undone: %v", err)
	}
	if _, err := check.Get(tbl, id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted insert visible: %v", err)
	}
	if s := db.Stats(); s.Aborts != 1 {
		t.Fatalf("aborts %d", s.Aborts)
	}
}

func TestFinishedTxnRejected(t *testing.T) {
	db, tbl := openBank(t, 2, 1, 1)
	txn := db.Begin(context.Background())
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatal("double commit accepted")
	}
	if err := txn.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatal("abort after commit accepted")
	}
	if _, err := txn.Get(tbl, 0); !errors.Is(err, ErrTxnDone) {
		t.Fatal("read on finished txn accepted")
	}
	if _, err := txn.Insert(tbl, Tuple{StrDatum("x"), IntDatum(1)}); !errors.Is(err, ErrTxnDone) {
		t.Fatal("insert on finished txn accepted")
	}
}

func TestRangeScanLocksBestPlacement(t *testing.T) {
	// A range of 20 consecutive tuples over granules of 5 must take
	// exactly ceil(20/5) = 4 granule locks — the paper's best-placement
	// formula made concrete.
	db, tbl := openBank(t, 100, 4, 5)
	txn := db.Begin(context.Background())
	defer txn.Commit()
	tups, err := txn.RangeScan(tbl, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(tups) != 20 {
		t.Fatalf("range returned %d tuples", len(tups))
	}
	granules := 0
	for g := int64(0); g < 20; g++ {
		node := lockmgr.NodeID(fmt.Sprintf("bank/accounts/g%d", g))
		if _, held := db.locks.Held(txn.ID(), node); held {
			granules++
		}
	}
	if granules != 4 {
		t.Fatalf("range scan held %d granule locks, want 4", granules)
	}
}

func TestRangeScanEdges(t *testing.T) {
	db, tbl := openBank(t, 10, 2, 3)
	txn := db.Begin(context.Background())
	defer txn.Commit()
	if _, err := txn.RangeScan(tbl, -1, 5); err == nil {
		t.Fatal("negative from accepted")
	}
	if _, err := txn.RangeScan(tbl, 5, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	empty, err := txn.RangeScan(tbl, 4, 4)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty range: %v %v", empty, err)
	}
	// Range past the end clips.
	tail, err := txn.RangeScan(tbl, 8, 100)
	if err != nil || len(tail) != 2 {
		t.Fatalf("clipped range: %d %v", len(tail), err)
	}
}

func TestFullScanBlocksWriters(t *testing.T) {
	db, tbl := openBank(t, 20, 2, 5)
	ctx := context.Background()
	reader := db.Begin(ctx)
	tups, err := reader.Scan(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tups) != 20 {
		t.Fatalf("scan returned %d", len(tups))
	}
	// A writer must block until the scan's table S lock is released.
	done := make(chan error, 1)
	go func() {
		done <- db.Exec(ctx, func(w *Txn) error {
			return w.Update(tbl, 0, "balance", IntDatum(1))
		})
	}()
	select {
	case <-done:
		t.Fatal("writer not blocked by table-level scan lock")
	case <-time.After(20 * time.Millisecond):
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestScanPredicate(t *testing.T) {
	db, tbl := openBank(t, 10, 2, 5)
	ctx := context.Background()
	if err := db.Exec(ctx, func(txn *Txn) error {
		return txn.Update(tbl, 3, "balance", IntDatum(999))
	}); err != nil {
		t.Fatal(err)
	}
	txn := db.Begin(ctx)
	defer txn.Commit()
	rich, err := txn.Scan(tbl, func(tup Tuple) bool { return tup[1].Int > 500 })
	if err != nil {
		t.Fatal(err)
	}
	if len(rich) != 1 || rich[0][0].Str != "acct3" {
		t.Fatalf("predicate scan: %v", rich)
	}
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	db, tbl := openBank(t, 50, 4, 5)
	ctx := context.Background()
	const workers, txns = 8, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				from := int64((w*7 + i*3) % 50)
				to := int64((w*11 + i*13 + 1) % 50)
				err := db.Exec(ctx, func(txn *Txn) error {
					a, err := txn.Get(tbl, from)
					if err != nil {
						return err
					}
					b, err := txn.Get(tbl, to)
					if err != nil {
						return err
					}
					if err := txn.Update(tbl, from, "balance", IntDatum(a[1].Int-5)); err != nil {
						return err
					}
					return txn.Update(tbl, to, "balance", IntDatum(b[1].Int+5))
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	txn := db.Begin(ctx)
	defer txn.Commit()
	all, err := txn.Scan(tbl, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, tup := range all {
		total += tup[1].Int
	}
	if total != 50*100 {
		t.Fatalf("conservation violated: %d", total)
	}
	if s := db.Stats(); s.Commits < workers*txns {
		t.Fatalf("commits %d", s.Commits)
	}
}

func TestDeadlockVictimRetriedByExec(t *testing.T) {
	// Get-then-Update in opposite orders across granules forces
	// conversion/order deadlocks; Exec must retry victims to completion.
	db, tbl := openBank(t, 10, 2, 1)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				a, b := int64(0), int64(9)
				if w%2 == 1 {
					a, b = b, a
				}
				err := db.Exec(ctx, func(txn *Txn) error {
					if err := txn.Update(tbl, a, "balance", IntDatum(int64(i))); err != nil {
						return err
					}
					return txn.Update(tbl, b, "balance", IntDatum(int64(i)))
				})
				if err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock retry loop hung")
	}
}

func TestEscalationKicksInOnPointReads(t *testing.T) {
	db, tbl := openBank(t, 100, 4, 1, WithEscalation(10))
	ctx := context.Background()
	txn := db.Begin(ctx)
	for id := int64(0); id < 20; id++ {
		if _, err := txn.Get(tbl, id); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Escalations == 0 {
		t.Fatal("no escalation after 20 tuple locks with threshold 10")
	}
	// The escalated table S lock must now block a writer.
	blocked := make(chan error, 1)
	go func() {
		w := db.Begin(ctx)
		defer w.Commit()
		blocked <- w.Update(tbl, 99, "balance", IntDatum(0))
	}()
	select {
	case <-blocked:
		t.Fatal("writer not blocked by escalated table lock")
	case <-time.After(20 * time.Millisecond):
	}
	txn.Commit()
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

func TestDatumAndTypeStrings(t *testing.T) {
	if Int.String() != "int" || String.String() != "string" || Type(9).String() == "" {
		t.Fatal("type names")
	}
	if IntDatum(5).String() != "5" || StrDatum("x").String() != "x" {
		t.Fatal("datum strings")
	}
	if (Datum{Type: Type(9)}).String() == "" {
		t.Fatal("unknown datum string")
	}
}

func TestStoredTuplesDoNotAliasCallerSlices(t *testing.T) {
	db, tbl := openBank(t, 1, 1, 1)
	ctx := context.Background()
	tup := Tuple{StrDatum("alias"), IntDatum(7)}
	var id int64
	if err := db.Exec(ctx, func(txn *Txn) error {
		var err error
		id, err = txn.Insert(tbl, tup)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tup[1] = IntDatum(999) // caller mutates its slice after commit
	txn := db.Begin(ctx)
	defer txn.Commit()
	got, err := txn.Get(tbl, id)
	if err != nil || got[1].Int != 7 {
		t.Fatalf("stored tuple aliased caller memory: %v %v", got, err)
	}
	got[0] = StrDatum("mutated") // and the read result must not alias storage
	again, _ := txn.Get(tbl, id)
	if again[0].Str != "alias" {
		t.Fatal("read result aliases storage")
	}
}
