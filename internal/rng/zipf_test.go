package rng

import (
	"math"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	for _, c := range []struct {
		s float64
		n int
	}{{-1, 10}, {1, 0}, {math.NaN(), 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Zipf(s=%v, n=%d) did not panic", c.s, c.n)
				}
			}()
			NewZipf(New(1), c.s, c.n)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil source accepted")
			}
		}()
		NewZipf(nil, 1, 10)
	}()
}

func TestZipfRangeAndCoverage(t *testing.T) {
	z := NewZipf(New(2), 1.0, 20)
	if z.N() != 20 {
		t.Fatalf("N = %d", z.N())
	}
	seen := map[int]bool{}
	for i := 0; i < 50000; i++ {
		v := z.Next()
		if v < 0 || v >= 20 {
			t.Fatalf("value %d out of range", v)
		}
		seen[v] = true
	}
	for k := 0; k < 20; k++ {
		if !seen[k] {
			t.Fatalf("value %d never drawn", k)
		}
	}
}

func TestZipfZeroExponentIsUniform(t *testing.T) {
	z := NewZipf(New(3), 0, 10)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Fatalf("s=0 not uniform at %d: %d", k, c)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	z := NewZipf(New(4), 1.2, 100)
	const n = 100000
	top := 0
	for i := 0; i < n; i++ {
		if z.Next() < 5 {
			top++
		}
	}
	frac := float64(top) / n
	// With s=1.2 over 100 values, the top 5 carry well over half the
	// mass.
	if frac < 0.55 {
		t.Fatalf("top-5 mass %v, want > 0.55", frac)
	}
}

func TestZipfEmpiricalMatchesProb(t *testing.T) {
	z := NewZipf(New(5), 0.8, 8)
	const n = 200000
	counts := make([]int, 8)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k := 0; k < 8; k++ {
		want := z.Prob(k)
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("P(%d): empirical %v vs exact %v", k, got, want)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(New(6), 1.5, 50)
	sum := 0.0
	for k := 0; k < 50; k++ {
		sum += z.Prob(k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Fatal("out-of-range Prob nonzero")
	}
}

func TestZipfMonotoneDecreasingProb(t *testing.T) {
	z := NewZipf(New(7), 1.0, 30)
	for k := 1; k < 30; k++ {
		if z.Prob(k) > z.Prob(k-1)+1e-15 {
			t.Fatalf("P(%d)=%v > P(%d)=%v", k, z.Prob(k), k-1, z.Prob(k-1))
		}
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1.0, 10000)
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
