// Package rng provides a small, deterministic pseudo-random number
// generator with splittable streams and the distributions the simulation
// model needs.
//
// The generator is PCG-XSH-RR 64/32 (O'Neill, 2014): a 64-bit linear
// congruential state with a permuted 32-bit output. It is fast, has a
// period of 2^64 per stream, and — unlike math/rand's global source —
// gives the simulator bit-for-bit reproducible runs for a given seed on
// every platform. Distinct logical uses of randomness (transaction sizes,
// conflict draws, processor selection, ...) should draw from distinct
// streams obtained via Stream so that changing the consumption pattern of
// one use does not perturb the others.
package rng

import "math"

// mulPCG is the default LCG multiplier from the PCG reference
// implementation.
const mulPCG = 6364136223846793005

// Source is a single PCG-XSH-RR 64/32 stream. It is not safe for
// concurrent use; give each goroutine its own Source (see Stream).
type Source struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

// New returns a Source seeded with seed on the default stream.
func New(seed uint64) *Source {
	return NewStream(seed, 0)
}

// NewStream returns a Source seeded with seed on the given stream.
// Sources with the same seed but different streams produce statistically
// independent sequences.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: stream<<1 | 1}
	// The reference seeding procedure: advance once, add the seed,
	// advance again, so that nearby seeds do not yield nearby states.
	s.state = 0
	s.Uint32()
	s.state += seed
	s.Uint32()
	return s
}

// Stream derives a new independent Source from s for sub-stream i.
// The derivation consumes no randomness from s (the parent's sequence is
// unaffected), so adding or removing streams does not disturb existing
// ones, yet the child depends on the parent's seed and stream.
func (s *Source) Stream(i uint64) *Source {
	// Mix the parent's state, its stream id and the child index through
	// SplitMix64 so that child streams are well separated across both
	// seeds and indices.
	mixed := splitmix64(s.state) ^ splitmix64(s.inc^(i+0x9e3779b97f4a7c15))
	return NewStream(mixed, splitmix64(i)|1)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Source) Uint32() uint32 {
	old := s.state
	s.state = old*mulPCG + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Float64 returns a uniform value in the half-open interval [0, 1).
func (s *Source) Float64() float64 {
	// 53 random bits scaled by 2^-53: the standard full-precision method.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64OC returns a uniform value in the half-open interval (0, 1].
// The lock-conflict computation of the paper partitions exactly this
// interval, so zero must be impossible and one possible.
func (s *Source) Float64OC() float64 {
	return 1 - s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation on 64 bits keeps
	// the modulo bias below 2^-64 without a rejection loop in practice.
	v := s.Uint64()
	hi, _ := mul64(v, uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// IntRange returns a uniform integer in the closed interval [lo, hi].
// It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	return -mean * math.Log(s.Float64OC())
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Subset returns k distinct integers drawn uniformly from [0, n),
// in random order. It panics if k > n or k < 0.
func (s *Source) Subset(k, n int) []int {
	if k < 0 || k > n {
		panic("rng: Subset with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher–Yates over a dense index table. For the model's
	// sizes (n = npros <= a few hundred) this is both exact and fast.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
