package rng

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws integers from [0, n) with P(k) ∝ 1/(k+1)^s — the standard
// skewed-access model for database hot spots (s=0 degenerates to
// uniform; s≈1 is the classic "80/20"-ish skew). The sampler
// precomputes the CDF once and draws by binary search, so it is exact
// and O(log n) per draw.
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf returns a sampler over [0, n) with exponent s ≥ 0. It panics
// for n < 1 or negative s (static misconfiguration).
func NewZipf(src *Source, s float64, n int) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("rng: Zipf domain %d < 1", n))
	}
	if s < 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("rng: Zipf exponent %v < 0", s))
	}
	if src == nil {
		panic("rng: Zipf with nil source")
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{src: src, cdf: cdf}
}

// Next draws one value.
func (z *Zipf) Next() int {
	p := z.src.Float64OC()
	return sort.SearchFloat64s(z.cdf, p)
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns the exact probability of value k (diagnostics/tests).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}
