package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("nearby seeds produced %d/1000 identical outputs", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	parent := New(7)
	s0 := parent.Stream(0)
	s1 := parent.Stream(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if s0.Uint32() == s1.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling streams produced %d/1000 identical outputs", same)
	}
}

func TestStreamDependsOnParentSeed(t *testing.T) {
	// Regression test: streams derived from differently seeded parents
	// must differ, or every simulation seed would produce the same run.
	a := New(1).Stream(0)
	b := New(2).Stream(0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds produced %d/1000 identical outputs", same)
	}
}

func TestStreamDerivationConsumesNothing(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Stream(3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Stream derivation consumed randomness from the parent")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OCRange(t *testing.T) {
	s := New(4)
	for i := 0; i < 100000; i++ {
		f := s.Float64OC()
		if f <= 0 || f > 1 {
			t.Fatalf("Float64OC out of (0,1]: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(6)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(8)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn(%d): value %d seen %d times, want about %.0f", n, v, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(10)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Fatalf("IntRange(3,7) never produced %d", v)
		}
	}
	if got := s.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d, want 5", got)
	}
}

func TestExpMean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exp mean %v, want about 2.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(12)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSubsetProperties(t *testing.T) {
	s := New(13)
	f := func(kRaw, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		sub := s.Subset(k, n)
		if len(sub) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range sub {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetCoverage(t *testing.T) {
	// Every element of [0,n) must be reachable in a k-subset.
	s := New(14)
	const n, k = 6, 3
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		for _, v := range s.Subset(k, n) {
			seen[v] = true
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			t.Fatalf("Subset(%d,%d) never produced %d", k, n, v)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(15)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Shuffle lost element %d: %v", v, xs)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(16)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.8) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.8) > 0.01 {
		t.Fatalf("Bernoulli(0.8) frequency %v", p)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}
