// Package ring implements the static consistent-hash ring that
// partitions the granule namespace across lock-service nodes. Each node
// projects a fixed number of virtual points onto a 64-bit hash circle;
// a granule belongs to the node owning the first point at or after the
// granule's hash. Virtual points smooth the partition sizes (with one
// point per node a two-node ring can split 90/10; with the default 64
// the imbalance stays within a few percent) and keep the amount of
// keyspace that moves when the ring grows proportional to 1/N.
//
// The ring is static configuration: every node and every client of a
// cluster must construct it from the same ordered node count and vnode
// count, or they will disagree about ownership. Ownership disputes are
// self-correcting at the protocol level (a node redirects requests for
// granules it does not serve), but a persistent mismatch turns every
// request into a redirect, so the vnode count travels with the cluster
// config rather than being a per-process tunable.
package ring

import "sort"

// DefaultVNodes is the virtual-point count per node used when a
// cluster config does not specify one. 64 keeps the largest/smallest
// partition ratio under ~1.3 for small clusters while the ring stays a
// few hundred entries — binary-searchable in a handful of cache lines.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over n nodes. Methods are
// safe for concurrent use.
type Ring struct {
	n      int
	points []point // sorted ascending by hash
}

// point is one virtual node: a position on the hash circle and the
// node that owns the arc ending there.
type point struct {
	hash uint64
	node int
}

// New builds a ring over n nodes (numbered 0..n-1) with DefaultVNodes
// virtual points each. n must be at least 1.
func New(n int) *Ring { return NewWithVNodes(n, DefaultVNodes) }

// NewWithVNodes builds a ring over n nodes with v virtual points each.
// Both sides of a cluster must agree on v.
func NewWithVNodes(n, v int) *Ring {
	if n < 1 {
		panic("ring: need at least one node")
	}
	if v < 1 {
		v = 1
	}
	r := &Ring{n: n, points: make([]point, 0, n*v)}
	for node := 0; node < n; node++ {
		for rep := 0; rep < v; rep++ {
			// Each virtual point hashes (node, replica) salted into a
			// separate domain from the key space: without the salt,
			// node 0's inputs are the raw values 0..v-1, and any granule
			// id below v hashes to exactly its vnode point — landing
			// every small id on node 0.
			h := mix(vnodeSalt ^ (uint64(node)<<32 | uint64(rep)&0xffffffff))
			r.points = append(r.points, point{hash: h, node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break so every process sorts identically.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns how many nodes the ring was built over.
func (r *Ring) Nodes() int { return r.n }

// Owner returns the node that owns key: the node of the first virtual
// point at or after the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key uint64) int {
	h := mix(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Successor returns the standby for node: the next node index on the
// static ring order. When a node dies, its whole partition fails over
// to its successor; the scheme tolerates one failure at a time (a
// second concurrent failure of the successor is out of scope for the
// static ring).
func (r *Ring) Successor(node int) int { return (node + 1) % r.n }

// vnodeSalt keeps virtual-point hash inputs disjoint from granule
// keys (which are mixed raw). Arbitrary odd constant; changing it
// re-partitions every cluster, so it is part of the wire-compatible
// ring definition.
const vnodeSalt = 0x5bd1e9955bd1e995

// mix is the shared 64-bit hash for keys and virtual points: FNV-1a
// over the value's 8 big-endian bytes, followed by an avalanche step
// (splitmix64 finalizer) so near-sequential granule ids spread across
// the circle instead of clustering on one arc.
func mix(v uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= (v >> uint(shift)) & 0xff
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
