package ring

import "testing"

// Two rings built from the same (n, vnodes) must agree on every key:
// server and client construct the ring independently.
func TestDeterministicAcrossInstances(t *testing.T) {
	a := NewWithVNodes(4, 64)
	b := NewWithVNodes(4, 64)
	for key := uint64(0); key < 10000; key++ {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %d: owner %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestOwnerInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		r := New(n)
		for key := uint64(0); key < 5000; key++ {
			o := r.Owner(key)
			if o < 0 || o >= n {
				t.Fatalf("n=%d key=%d: owner %d out of range", n, key, o)
			}
		}
	}
}

// Sequential granule ids must spread across nodes, not cluster on one
// arc — the whole point of the avalanche step.
func TestBalance(t *testing.T) {
	const keys = 100000
	for _, n := range []int{2, 4} {
		r := New(n)
		counts := make([]int, n)
		for key := uint64(0); key < keys; key++ {
			counts[r.Owner(key)]++
		}
		want := keys / n
		for node, c := range counts {
			if c < want/2 || c > want*2 {
				t.Fatalf("n=%d node %d owns %d of %d keys (want near %d)", n, node, c, keys, want)
			}
		}
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r := New(1)
	for key := uint64(0); key < 1000; key++ {
		if r.Owner(key) != 0 {
			t.Fatalf("single-node ring routed key %d to node %d", key, r.Owner(key))
		}
	}
	if r.Successor(0) != 0 {
		t.Fatalf("single-node successor = %d", r.Successor(0))
	}
}

func TestSuccessorWraps(t *testing.T) {
	r := New(3)
	if got := r.Successor(2); got != 0 {
		t.Fatalf("Successor(2) = %d, want 0", got)
	}
	if got := r.Successor(0); got != 1 {
		t.Fatalf("Successor(0) = %d, want 1", got)
	}
}

// Regression: vnode points used to hash the raw (node, replica) pair,
// so node 0's points occupied the exact hash slots of keys 0..v-1 and
// every small granule id resolved to node 0. With domain-separated
// point hashing, small sequential ids must spread across nodes.
func TestSmallKeysNotCaptured(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		r := New(n)
		counts := make([]int, n)
		for key := uint64(0); key < uint64(DefaultVNodes); key++ {
			counts[r.Owner(key)]++
		}
		for node, c := range counts {
			if c == DefaultVNodes {
				t.Fatalf("n=%d: node %d captured all %d small keys", n, node, c)
			}
		}
		if counts[0] == 0 {
			t.Fatalf("n=%d: node 0 owns no small keys: %v", n, counts)
		}
	}
}
