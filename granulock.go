// Package granulock reproduces "Locking Granularity in Multiprocessor
// Database Systems" (S. Dandamudi and S.-L. Au, Proc. IEEE ICDE 1991):
// a discrete-event simulation study of how the number of lockable
// granules affects throughput, response time and lock overhead in a
// shared-nothing multiprocessor database system.
//
// The package is a thin facade; the machinery lives under internal/:
//
//   - internal/model — the paper's closed simulation model;
//   - internal/experiments — Table 1 and Figures 2–12 as runnable sweeps;
//   - internal/lockmgr — the probabilistic conflict model plus real lock
//     managers (flat S/X, multigranularity, deadlock detection);
//   - internal/engine — an executable shared-nothing mini-DBMS used to
//     cross-validate the simulation's conclusions on real goroutines.
//
// # Quick start
//
//	p := granulock.DefaultParams() // the paper's Table 1 configuration
//	p.NPros = 30
//	p.Ltot = 100
//	m, err := granulock.Run(p)
//	if err != nil { ... }
//	fmt.Println(m.Throughput, m.MeanResponse)
//
// To regenerate a figure from the paper:
//
//	fig, err := granulock.RunFigure("fig2", granulock.Options{})
//	fmt.Println(granulock.RenderText(fig))
package granulock

import (
	"context"
	"errors"
	"io"
	"net/http"

	"granulock/internal/analytic"
	"granulock/internal/core"
	"granulock/internal/experiments"
	"granulock/internal/model"
	"granulock/internal/obs"
	"granulock/internal/partition"
	"granulock/internal/sched"
	"granulock/internal/stats"
	"granulock/internal/trace"
	"granulock/internal/workload"
)

// Params are the simulation model's input parameters; see the field
// documentation in internal/model.
type Params = model.Params

// Metrics are the model's output parameters.
type Metrics = model.Metrics

// Class is one transaction size class of a workload mix.
type Class = workload.Class

// Placement selects the granule-placement strategy (lock demand model).
type Placement = workload.Placement

// Granule placement strategies (paper §3.5).
const (
	PlacementBest   = workload.PlacementBest
	PlacementWorst  = workload.PlacementWorst
	PlacementRandom = workload.PlacementRandom
)

// Strategy selects the data partitioning method (paper §3.4).
type Strategy = partition.Strategy

// Data partitioning strategies.
const (
	Horizontal = partition.Horizontal
	RandomPart = partition.Random
)

// Figure is one evaluated experiment (a paper figure).
type Figure = experiments.Figure

// Options control experiment execution (horizon, seed, replications,
// parallelism).
type Options = experiments.Options

// Replicated summarizes repeated runs of one configuration.
type Replicated = core.Replicated

// PointSummary is one point of a granularity tuning curve.
type PointSummary = core.PointSummary

// DefaultParams returns the paper's Table 1 configuration.
func DefaultParams() Params { return core.DefaultParams() }

// Registry is a metric registry: labeled families of counters, gauges
// and histograms with Prometheus text-format exposition. Attach one to
// a run with WithMetrics, serve it with Registry.Handler or write it
// with Registry.WriteTo, and inspect it in tests with
// Registry.Snapshot.
type Registry = obs.Registry

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// MetricsHandler returns an http.Handler serving reg in Prometheus
// text format (for mounting on a custom mux; cmd/lockd's -admin
// listener does exactly this).
func MetricsHandler(reg *Registry) http.Handler { return reg.Handler() }

// DefBuckets returns a copy of the default histogram bucket bounds
// (latencies in seconds, sub-millisecond to ~10s).
func DefBuckets() []float64 { return append([]float64(nil), obs.DefBuckets...) }

// ExpBuckets returns n exponential histogram bucket bounds: start,
// start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	return obs.ExpBuckets(start, factor, n)
}

// runConfig collects the effects of RunOptions.
type runConfig struct {
	obs    Observer
	reg    *Registry
	ctx    context.Context
	reps   int
	repOut *Replicated
}

// RunOption configures a Run call.
type RunOption func(*runConfig)

// WithObserver attaches a lifecycle observer (tracing, response
// collection) to the run. Incompatible with WithReplications above 1:
// an observer watches one run, not an ensemble.
func WithObserver(o Observer) RunOption {
	return func(c *runConfig) { c.obs = o }
}

// WithMetrics mirrors the run into reg: lifecycle event counters and
// response-time histograms while the simulation executes, plus the
// output parameters as gauges when it completes (granulock_sim_
// families). Without this option the run executes the exact
// uninstrumented code path, so results and performance are unchanged.
func WithMetrics(reg *Registry) RunOption {
	return func(c *runConfig) { c.reg = reg }
}

// WithContext makes the run cancellable: the event loop checks ctx
// between bounded chunks and the run fails with ctx.Err() if it fires.
// Cancellation checks do not perturb the event order, so a run that
// completes returns exactly what it would have without the context.
func WithContext(ctx context.Context) RunOption {
	return func(c *runConfig) { c.ctx = ctx }
}

// WithReplications averages the run over reps independent seeds (Seed,
// Seed+1, ...), executed in parallel. The returned Metrics are the
// field-wise mean; pair with WithReplicatedSummary for confidence
// intervals. reps below 1 is an error.
func WithReplications(reps int) RunOption {
	return func(c *runConfig) { c.reps = reps }
}

// WithReplicatedSummary stores the full replication summary (per-run
// metrics and 95% confidence intervals) into out when the run
// completes. On its own it summarizes a single replication (all
// confidence intervals zero); combine with WithReplications for real
// ensembles. Incompatible with WithObserver.
func WithReplicatedSummary(out *Replicated) RunOption {
	return func(c *runConfig) { c.repOut = out }
}

// Run executes the simulation model and returns its output parameters;
// deterministic per Seed. Options attach an observer (WithObserver),
// mirror the run into a metric registry (WithMetrics), bound it with a
// context (WithContext), or average it over independent replications
// (WithReplications, WithReplicatedSummary). With no options this is
// exactly the classic single-run entry point.
func Run(p Params, opts ...RunOption) (Metrics, error) {
	c := runConfig{reps: 1}
	for _, o := range opts {
		o(&c)
	}
	if c.reps < 1 {
		return Metrics{}, errors.New("granulock: replications < 1")
	}
	if c.reps > 1 || c.repOut != nil {
		if c.obs != nil {
			return Metrics{}, errors.New("granulock: WithObserver is incompatible with WithReplications: an observer watches one run")
		}
		rep, err := core.SimulateReplicatedContext(c.ctx, p, c.reps)
		if err != nil {
			return Metrics{}, err
		}
		if c.repOut != nil {
			*c.repOut = rep
		}
		avg, _ := experiments.Average(rep.Runs)
		if c.reg != nil {
			model.RecordMetrics(c.reg, avg)
		}
		return avg, nil
	}
	obsv := c.obs
	if c.reg != nil {
		obsv = model.Tee(c.obs, model.NewMetricsObserver(c.reg))
	}
	var m Metrics
	var err error
	switch {
	case c.ctx != nil:
		m, err = model.RunContext(c.ctx, p, obsv)
	case obsv != nil:
		m, err = model.RunObserved(p, obsv)
	default:
		m, err = core.Simulate(p)
	}
	if err != nil {
		return Metrics{}, err
	}
	if c.reg != nil {
		model.RecordMetrics(c.reg, m)
	}
	return m, nil
}

// RunReplicated executes reps independent replications in parallel and
// summarizes the headline metrics with 95% confidence intervals.
//
// Deprecated: use Run(p, WithReplications(reps),
// WithReplicatedSummary(&rep)).
func RunReplicated(p Params, reps int) (Replicated, error) {
	var rep Replicated
	_, err := Run(p, WithReplications(reps), WithReplicatedSummary(&rep))
	return rep, err
}

// OptimalGranularity sweeps the number of locks and returns the
// throughput-maximizing value together with the whole curve.
func OptimalGranularity(p Params) (best int, curve []PointSummary, err error) {
	return core.OptimalGranularity(p)
}

// OptimalGranularityContext is OptimalGranularity bounded by a
// context: cancellation is checked before each grid point and inside
// in-flight simulations.
func OptimalGranularityContext(ctx context.Context, p Params) (best int, curve []PointSummary, err error) {
	return core.OptimalGranularityContext(ctx, p)
}

// FigureIDs lists the reproducible figures ("fig2" .. "fig12") in paper
// order.
func FigureIDs() []string { return experiments.IDs() }

// ExtensionIDs lists the extension experiments beyond the paper
// (scheduling remedy and modeling ablations); run them with RunFigure.
func ExtensionIDs() []string { return experiments.ExtIDs() }

// RunFigure evaluates one figure of the paper's evaluation section.
func RunFigure(id string, o Options) (Figure, error) { return experiments.Run(id, o) }

// Table1 renders the paper's input-parameter table.
func Table1() string { return experiments.Table1() }

// RenderText formats a figure as aligned tables plus ASCII charts.
func RenderText(f Figure) string { return experiments.RenderText(f) }

// RenderCSV formats a figure as CSV (figure,panel,series,x,y).
func RenderCSV(f Figure) string { return experiments.RenderCSV(f) }

// UniformWorkload returns the single-class workload of §3.1–§3.4.
func UniformWorkload(maxtransize int) []Class { return workload.Uniform(maxtransize) }

// SmallLargeMix returns the §3.6 mixed workload.
func SmallLargeMix(smallMax, largeMax int, fracSmall float64) []Class {
	return workload.SmallLargeMix(smallMax, largeMax, fracSmall)
}

// Prediction is the analytic (MVA-based) estimate of a configuration's
// steady state.
type Prediction = analytic.Prediction

// Predict analytically approximates the model's throughput, attained
// concurrency and blocking probability in microseconds — the
// closed-form companion to Run. Horizontal partitioning only; see
// internal/analytic for the approximation's assumptions.
func Predict(p Params) (Prediction, error) { return analytic.Predict(p) }

// PredictOptimalGranularity sweeps the standard granularity grid
// analytically and returns the predicted throughput-optimal number of
// locks with the whole curve.
func PredictOptimalGranularity(p Params) (best int, curve []Prediction, err error) {
	return analytic.OptimalGranularity(p, experiments.LtotSweep(p.DBSize))
}

// Observer receives simulation lifecycle events; see RunWithObserver.
type Observer = model.Observer

// ResponseCollector gathers per-transaction response times (an
// Observer), for quantiles and batch-means confidence intervals.
type ResponseCollector = model.ResponseCollector

// ClassCollector gathers per-class completions and response times for
// mixed workloads (an Observer).
type ClassCollector = model.ClassCollector

// RunWithObserver is Run with a tracing/measurement hook attached.
//
// Deprecated: use Run(p, WithObserver(obs)).
func RunWithObserver(p Params, obs Observer) (Metrics, error) {
	return Run(p, WithObserver(obs))
}

// NewTraceWriter returns an Observer streaming every simulation event
// to w as JSON lines; Close it after the run to flush.
func NewTraceWriter(w io.Writer) *trace.Writer { return trace.NewWriter(w) }

// Quantile returns the q-quantile of xs by linear interpolation (NaN
// for empty input).
func Quantile(xs []float64, q float64) float64 { return stats.Quantile(xs, q) }

// BatchMeans summarizes autocorrelated within-run observations (e.g. a
// ResponseCollector's samples) with a batch-means 95% confidence
// interval.
func BatchMeans(xs []float64, batches int) (stats.Summary, error) {
	return stats.BatchMeans(xs, batches)
}

// Scheduler is a transaction-level admission policy (paper §3.7).
type Scheduler = sched.Policy

// FixedMPL returns a policy admitting at most limit concurrently active
// transactions.
func FixedMPL(limit int) Scheduler { return sched.FixedMPL{Limit: limit} }

// AdaptiveMPL returns the additive-increase/multiplicative-decrease
// admission policy adapting an MPL limit in [min, max] to the observed
// lock-denial rate.
func AdaptiveMPL(min, max, window int, targetDenialRate float64) (Scheduler, error) {
	return sched.NewAdaptiveMPL(min, max, window, targetDenialRate)
}
