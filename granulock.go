// Package granulock reproduces "Locking Granularity in Multiprocessor
// Database Systems" (S. Dandamudi and S.-L. Au, Proc. IEEE ICDE 1991):
// a discrete-event simulation study of how the number of lockable
// granules affects throughput, response time and lock overhead in a
// shared-nothing multiprocessor database system.
//
// The package is a thin facade; the machinery lives under internal/:
//
//   - internal/model — the paper's closed simulation model;
//   - internal/experiments — Table 1 and Figures 2–12 as runnable sweeps;
//   - internal/lockmgr — the probabilistic conflict model plus real lock
//     managers (flat S/X, multigranularity, deadlock detection);
//   - internal/engine — an executable shared-nothing mini-DBMS used to
//     cross-validate the simulation's conclusions on real goroutines.
//
// # Quick start
//
//	p := granulock.DefaultParams() // the paper's Table 1 configuration
//	p.NPros = 30
//	p.Ltot = 100
//	m, err := granulock.Run(p)
//	if err != nil { ... }
//	fmt.Println(m.Throughput, m.MeanResponse)
//
// To regenerate a figure from the paper:
//
//	fig, err := granulock.RunFigure("fig2", granulock.Options{})
//	fmt.Println(granulock.RenderText(fig))
package granulock

import (
	"io"

	"granulock/internal/analytic"
	"granulock/internal/core"
	"granulock/internal/experiments"
	"granulock/internal/model"
	"granulock/internal/partition"
	"granulock/internal/sched"
	"granulock/internal/stats"
	"granulock/internal/trace"
	"granulock/internal/workload"
)

// Params are the simulation model's input parameters; see the field
// documentation in internal/model.
type Params = model.Params

// Metrics are the model's output parameters.
type Metrics = model.Metrics

// Class is one transaction size class of a workload mix.
type Class = workload.Class

// Placement selects the granule-placement strategy (lock demand model).
type Placement = workload.Placement

// Granule placement strategies (paper §3.5).
const (
	PlacementBest   = workload.PlacementBest
	PlacementWorst  = workload.PlacementWorst
	PlacementRandom = workload.PlacementRandom
)

// Strategy selects the data partitioning method (paper §3.4).
type Strategy = partition.Strategy

// Data partitioning strategies.
const (
	Horizontal = partition.Horizontal
	RandomPart = partition.Random
)

// Figure is one evaluated experiment (a paper figure).
type Figure = experiments.Figure

// Options control experiment execution (horizon, seed, replications,
// parallelism).
type Options = experiments.Options

// Replicated summarizes repeated runs of one configuration.
type Replicated = core.Replicated

// PointSummary is one point of a granularity tuning curve.
type PointSummary = core.PointSummary

// DefaultParams returns the paper's Table 1 configuration.
func DefaultParams() Params { return core.DefaultParams() }

// Run executes the simulation model once; deterministic per Seed.
func Run(p Params) (Metrics, error) { return core.Simulate(p) }

// RunReplicated executes reps independent replications in parallel and
// summarizes the headline metrics with 95% confidence intervals.
func RunReplicated(p Params, reps int) (Replicated, error) {
	return core.SimulateReplicated(p, reps)
}

// OptimalGranularity sweeps the number of locks and returns the
// throughput-maximizing value together with the whole curve.
func OptimalGranularity(p Params) (best int, curve []PointSummary, err error) {
	return core.OptimalGranularity(p)
}

// FigureIDs lists the reproducible figures ("fig2" .. "fig12") in paper
// order.
func FigureIDs() []string { return experiments.IDs() }

// ExtensionIDs lists the extension experiments beyond the paper
// (scheduling remedy and modeling ablations); run them with RunFigure.
func ExtensionIDs() []string { return experiments.ExtIDs() }

// RunFigure evaluates one figure of the paper's evaluation section.
func RunFigure(id string, o Options) (Figure, error) { return experiments.Run(id, o) }

// Table1 renders the paper's input-parameter table.
func Table1() string { return experiments.Table1() }

// RenderText formats a figure as aligned tables plus ASCII charts.
func RenderText(f Figure) string { return experiments.RenderText(f) }

// RenderCSV formats a figure as CSV (figure,panel,series,x,y).
func RenderCSV(f Figure) string { return experiments.RenderCSV(f) }

// UniformWorkload returns the single-class workload of §3.1–§3.4.
func UniformWorkload(maxtransize int) []Class { return workload.Uniform(maxtransize) }

// SmallLargeMix returns the §3.6 mixed workload.
func SmallLargeMix(smallMax, largeMax int, fracSmall float64) []Class {
	return workload.SmallLargeMix(smallMax, largeMax, fracSmall)
}

// Prediction is the analytic (MVA-based) estimate of a configuration's
// steady state.
type Prediction = analytic.Prediction

// Predict analytically approximates the model's throughput, attained
// concurrency and blocking probability in microseconds — the
// closed-form companion to Run. Horizontal partitioning only; see
// internal/analytic for the approximation's assumptions.
func Predict(p Params) (Prediction, error) { return analytic.Predict(p) }

// PredictOptimalGranularity sweeps the standard granularity grid
// analytically and returns the predicted throughput-optimal number of
// locks with the whole curve.
func PredictOptimalGranularity(p Params) (best int, curve []Prediction, err error) {
	return analytic.OptimalGranularity(p, experiments.LtotSweep(p.DBSize))
}

// Observer receives simulation lifecycle events; see RunWithObserver.
type Observer = model.Observer

// ResponseCollector gathers per-transaction response times (an
// Observer), for quantiles and batch-means confidence intervals.
type ResponseCollector = model.ResponseCollector

// ClassCollector gathers per-class completions and response times for
// mixed workloads (an Observer).
type ClassCollector = model.ClassCollector

// RunWithObserver is Run with a tracing/measurement hook attached.
func RunWithObserver(p Params, obs Observer) (Metrics, error) {
	return model.RunObserved(p, obs)
}

// NewTraceWriter returns an Observer streaming every simulation event
// to w as JSON lines; Close it after the run to flush.
func NewTraceWriter(w io.Writer) *trace.Writer { return trace.NewWriter(w) }

// Quantile returns the q-quantile of xs by linear interpolation (NaN
// for empty input).
func Quantile(xs []float64, q float64) float64 { return stats.Quantile(xs, q) }

// BatchMeans summarizes autocorrelated within-run observations (e.g. a
// ResponseCollector's samples) with a batch-means 95% confidence
// interval.
func BatchMeans(xs []float64, batches int) (stats.Summary, error) {
	return stats.BatchMeans(xs, batches)
}

// Scheduler is a transaction-level admission policy (paper §3.7).
type Scheduler = sched.Policy

// FixedMPL returns a policy admitting at most limit concurrently active
// transactions.
func FixedMPL(limit int) Scheduler { return sched.FixedMPL{Limit: limit} }

// AdaptiveMPL returns the additive-increase/multiplicative-decrease
// admission policy adapting an MPL limit in [min, max] to the observed
// lock-denial rate.
func AdaptiveMPL(min, max, window int, targetDenialRate float64) (Scheduler, error) {
	return sched.NewAdaptiveMPL(min, max, window, targetDenialRate)
}
