package granulock_test

import (
	"strings"
	"testing"

	"granulock"
)

func TestQuickstartFlow(t *testing.T) {
	p := granulock.DefaultParams()
	p.TMax = 200
	p.NPros = 5
	p.Ltot = 50
	m, err := granulock.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotCom <= 0 || m.Throughput <= 0 {
		t.Fatalf("no progress: %+v", m)
	}
}

func TestWorkloadHelpers(t *testing.T) {
	p := granulock.DefaultParams()
	p.TMax = 200
	p.Classes = granulock.SmallLargeMix(50, 500, 0.8)
	if _, err := granulock.Run(p); err != nil {
		t.Fatal(err)
	}
	p.Classes = granulock.UniformWorkload(100)
	if _, err := granulock.Run(p); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementAndPartitioningReexports(t *testing.T) {
	p := granulock.DefaultParams()
	p.TMax = 200
	p.Placement = granulock.PlacementWorst
	p.Partitioning = granulock.RandomPart
	if _, err := granulock.Run(p); err != nil {
		t.Fatal(err)
	}
}

func TestFigureIDsStable(t *testing.T) {
	ids := granulock.FigureIDs()
	if len(ids) != 11 {
		t.Fatalf("%d ids", len(ids))
	}
}

func TestRunFigureAndRender(t *testing.T) {
	fig, err := granulock.RunFigure("fig7", granulock.Options{TMax: 150})
	if err != nil {
		t.Fatal(err)
	}
	text := granulock.RenderText(fig)
	if !strings.Contains(text, "Figure 7") {
		t.Fatal("render missing title")
	}
	csv := granulock.RenderCSV(fig)
	if !strings.HasPrefix(csv, "figure,panel,series,x,y") {
		t.Fatal("csv header missing")
	}
}

func TestTable1Facade(t *testing.T) {
	if !strings.Contains(granulock.Table1(), "dbsize") {
		t.Fatal("Table 1 missing content")
	}
}

func TestRunReplicatedFacade(t *testing.T) {
	p := granulock.DefaultParams()
	p.TMax = 150
	r, err := granulock.RunReplicated(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput.N != 3 {
		t.Fatalf("summary %+v", r.Throughput)
	}
}

func TestOptimalGranularityFacade(t *testing.T) {
	p := granulock.DefaultParams()
	p.TMax = 300
	best, curve, err := granulock.OptimalGranularity(p)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1 || len(curve) == 0 {
		t.Fatalf("best=%d curve=%d", best, len(curve))
	}
}
