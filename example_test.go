package granulock_test

import (
	"fmt"

	"granulock"
)

// ExampleRun simulates the paper's base configuration once and prints
// the headline outputs. Results are deterministic per seed.
func ExampleRun() {
	p := granulock.DefaultParams()
	p.NPros = 10
	p.Ltot = 100
	p.TMax = 500
	p.Seed = 1

	m, err := granulock.Run(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed: %d transactions\n", m.TotCom)
	fmt.Printf("throughput: %.3f txn/time unit\n", m.Throughput)
	// Output:
	// completed: 96 transactions
	// throughput: 0.192 txn/time unit
}

// ExampleOptimalGranularity answers the paper's tuning question for one
// configuration: how many locks should the database expose?
func ExampleOptimalGranularity() {
	p := granulock.DefaultParams()
	p.TMax = 500
	p.Seed = 1

	best, _, err := granulock.OptimalGranularity(p)
	if err != nil {
		panic(err)
	}
	// The optimum is interior: neither one lock nor one per entity.
	fmt.Printf("interior optimum: %v\n", best > 1 && best < p.DBSize)
	// Output:
	// interior optimum: true
}

// ExamplePredict uses the analytic MVA companion instead of simulating.
func ExamplePredict() {
	p := granulock.DefaultParams()
	pred, err := granulock.Predict(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput at most the no-contention bound: %v\n",
		pred.Throughput <= pred.NoContention)
	// Output:
	// throughput at most the no-contention bound: true
}

// ExampleRunFigure regenerates one of the paper's figures.
func ExampleRunFigure() {
	fig, err := granulock.RunFigure("fig7", granulock.Options{TMax: 100, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(fig.ID, "-", len(fig.Panels), "panel,", len(fig.Panels[0].Series), "series")
	// Output:
	// fig7 - 1 panel, 3 series
}
