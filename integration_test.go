package granulock_test

import (
	"context"
	"testing"
	"time"

	"granulock"
	"granulock/internal/engine"
	"granulock/internal/relation"
)

// TestCrossSystemGranularityStory verifies the paper's core trade-off
// end to end on all three systems in the repository: the simulation
// model, the executable engine, and the relational layer all agree
// that finer granularity means fewer conflicts.
func TestCrossSystemGranularityStory(t *testing.T) {
	// 1. Simulation model: denial rate falls as ltot rises.
	denial := func(ltot int) float64 {
		p := granulock.DefaultParams()
		p.TMax = 500
		p.Ltot = ltot
		m, err := granulock.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return m.DenialRate
	}
	if d1, d100 := denial(1), denial(100); d100 >= d1 {
		t.Fatalf("simulation: denial rate did not fall with granularity: %v -> %v", d1, d100)
	}

	// 2. Executable engine: blocked acquisitions fall as granules rise.
	blocks := func(granules int) int64 {
		db, err := engine.Open(1000,
			engine.WithNodes(4),
			engine.WithGranules(granules),
			engine.WithProtocol(engine.Conservative),
			engine.WithInitialValue(100))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.RunClosed(context.Background(), engine.Workload{
			Workers: 8, TxnsPerWorker: 100, TransfersPerTxn: 2,
			WorkPerTxn: 20000, Seed: 1,
		}); err != nil {
			t.Fatal(err)
		}
		return db.Stats().Lock.Blocks
	}
	if b1, b100 := blocks(1), blocks(100); b100 >= b1 {
		t.Fatalf("engine: blocks did not fall with granularity: %d -> %d", b1, b100)
	}

	// 3. Relational layer: coarse granules force blocking between
	// transfers on different rows; fine granules avoid it.
	relBlocks := func(granuleSize int) int64 {
		db := relation.NewDB("x")
		tbl, err := db.CreateTable("t", relation.Schema{Columns: []relation.Column{
			{Name: "v", Type: relation.Int},
		}}, 2, granuleSize)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := db.Exec(ctx, func(txn *relation.Txn) error {
			for i := 0; i < 100; i++ {
				if _, err := txn.Insert(tbl, relation.Tuple{relation.IntDatum(100)}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// One transaction holds row 0's granule while another touches
		// row 99: with granuleSize 100 they collide, with 1 they don't.
		hold := db.Begin(ctx)
		if err := hold.Update(tbl, 0, "v", relation.IntDatum(1)); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			done <- db.Exec(ctx, func(txn *relation.Txn) error {
				return txn.Update(tbl, 99, "v", relation.IntDatum(2))
			})
		}()
		// Give the second transaction time to pass (fine granules) or
		// park (coarse), then release and drain.
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			blocked := db.Stats().Lock.Blocks
			hold.Commit()
			return blocked
		case <-time.After(50 * time.Millisecond):
		}
		blocked := db.Stats().Lock.Blocks
		hold.Commit()
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		return blocked
	}
	if fine := relBlocks(1); fine != 0 {
		t.Fatalf("relational: tuple-level granules blocked disjoint rows (%d)", fine)
	}
	if coarse := relBlocks(100); coarse == 0 {
		t.Fatal("relational: table-wide granule did not block disjoint rows")
	}
}

// TestSimulatorAnalyticEngineConsistentOptimum ties the simulator and
// the analytic model together at the facade level.
func TestSimulatorAnalyticEngineConsistentOptimum(t *testing.T) {
	p := granulock.DefaultParams()
	p.TMax = 500
	simBest, _, err := granulock.OptimalGranularity(p)
	if err != nil {
		t.Fatal(err)
	}
	anaBest, _, err := granulock.PredictOptimalGranularity(p)
	if err != nil {
		t.Fatal(err)
	}
	// Both optima must be interior and within a factor of ~10 of each
	// other on the log grid (they usually coincide exactly).
	if simBest <= 1 || simBest >= p.DBSize || anaBest <= 1 || anaBest >= p.DBSize {
		t.Fatalf("extreme optimum: simulated %d, analytic %d", simBest, anaBest)
	}
	lo, hi := simBest, anaBest
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > lo*10 {
		t.Fatalf("optima far apart: simulated %d vs analytic %d", simBest, anaBest)
	}
}
