GO ?= go

# STATICCHECK_VERSION pins the staticcheck release CI installs; bump it
# deliberately, alongside any new suppressions it requires. The local
# `make lint` runs staticcheck only when a binary is already on PATH
# (the build environment is offline; CI installs the pin itself).
STATICCHECK_VERSION ?= 2023.1.7

.PHONY: build test vet race bench benchsrv benchlock benchengine benchwal locknet lint granulint staticcheck tools verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_model.json, the performance-trajectory file
# (full-length figure sweeps; see DESIGN.md §1.1 for the schema).
bench:
	$(GO) run ./cmd/bench -suite model -out BENCH_model.json

# benchsrv regenerates BENCH_locksrv.json, the lock-service throughput
# report (protocol v1 vs v2, 1 vs 16 stripes; see docs/LOCKSRV.md).
# Compare a fresh run against the checked-in report with:
#   go run ./cmd/bench -suite locksrv -out /tmp/new.json -compare BENCH_locksrv.json
# which exits nonzero on a >10% throughput regression.
benchsrv:
	$(GO) run ./cmd/bench -suite locksrv -out BENCH_locksrv.json

# benchlock regenerates BENCH_lockmgr.json, the lock-table fast-path
# report (lock-free CAS path vs stripe-locked path; see DESIGN.md).
# The headline comparison carries a 5x acceptance target, so a
# regenerate on a machine where the fast path has regressed fails.
benchlock:
	$(GO) run ./cmd/bench -suite lockmgr -out BENCH_lockmgr.json

# benchengine regenerates BENCH_engine.json, the executable engine's
# protocol-comparison report (all registered concurrency-control
# protocols on a shared contended workload; see docs/ENGINE.md). The
# conservative fine-vs-coarse comparison carries a 0.5x floor.
benchengine:
	$(GO) run ./cmd/bench -suite engine -out BENCH_engine.json

# benchwal regenerates BENCH_wal.json, the durability report: group
# commit vs a per-commit-sync baseline at 1/8/64 committers over a
# fixed-latency sync model (the 8- and 64-committer comparisons carry
# hard 3x floors), plus snapshot-bounded vs full-history recovery on
# real file-backed logs (2x floor). See docs/WAL.md.
benchwal:
	$(GO) run ./cmd/bench -suite wal -out BENCH_wal.json

# locknet is the ISSUE 3 acceptance scenario: 1000 transactions through
# the network lock service behind the fault-injecting transport (drops,
# delays, partial writes); runNet fails unless the drain strands zero
# granules. Runs once per wire protocol, then once against a 3-node
# partitioned cluster with one node killed mid-run (runNetCluster fails
# unless the takeover happens and the survivors drain clean). See
# docs/LOCKSRV.md.
locknet:
	$(GO) run ./cmd/locksim -net 8 -nettxns 1000 -netfaults -ltot 100
	$(GO) run ./cmd/locksim -net 8 -nettxns 1000 -netfaults -netproto v2 -ltot 100
	$(GO) run ./cmd/locksim -net 6 -cluster 3 -nettxns 600 -netfaults -ltot 100

# granulint runs the repo's own invariant analyzers (internal/analysis,
# see docs/ANALYSIS.md) over every package; any unsuppressed finding
# fails the build.
granulint:
	$(GO) run ./cmd/granulint ./...

# staticcheck runs the pinned external linter with the curated check
# set in staticcheck.conf — but only where a binary exists: the
# offline dev image cannot `go install` it, so absence is a skip, not
# a failure. CI installs the pin and therefore always runs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (CI runs the pinned $(STATICCHECK_VERSION))"; \
	fi

# lint is the static half of the PR gate: granulint, then staticcheck.
lint: granulint staticcheck

# tools installs the pinned external lint tooling (network required).
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

# verify is the PR gate: the lint suite (granulint invariant analyzers
# plus pinned staticcheck where installed), go vet, the race-enabled
# test suite (which includes the locksrv fault-injection suite in
# internal/locksrv/harden_test.go and the protocol v2 suite in
# proto2_test.go), the lockd admin-endpoint smoke test (real lock
# traffic scraped through /metrics and validated as Prometheus text),
# the faulty network lock-service smoke run under both wire protocols
# plus the 3-node cluster kill-one-node failover smoke run,
# and quick benchmark smoke runs: the model suite regenerates
# BENCH_model.json with shortened figure sweeps, the lock-service
# suite exercises both protocols and stripe counts end to end (its
# quick report goes to a scratch path — the checked-in
# BENCH_locksrv.json is full-fidelity only, via `make benchsrv`), and
# the lockmgr suite is diffed against the checked-in baseline: quick
# vs full reports compare machine-independent speedup ratios, failing
# on a >25% ratio drop or any acceptance target missed (the fast-path
# headline carries a hard 5x floor). The engine suite smoke-runs every
# registered concurrency-control protocol end to end and diffs against
# the checked-in BENCH_engine.json (the conservative fine-vs-coarse
# comparison carries a hard 0.5x floor), and the engine balance-
# invariant run exercises one protocol through the locksim CLI. The
# wal suite smoke-runs group commit and recovery and diffs against the
# checked-in BENCH_wal.json (the 8/64-committer group-commit
# comparisons carry hard 3x floors, snapshot recovery a 2x floor), and
# the crash run kills a durable engine at random write/sync/checkpoint
# points under the race detector and fails unless every recovery
# conserves the bank-transfer invariant.
verify: lint
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'TestAdmin' ./cmd/lockd/
	$(GO) run ./cmd/locksim -net 8 -nettxns 1000 -netfaults -ltot 100
	$(GO) run ./cmd/locksim -net 8 -nettxns 1000 -netfaults -netproto v2 -ltot 100
	$(GO) run ./cmd/locksim -net 6 -cluster 3 -nettxns 600 -netfaults -ltot 100
	$(GO) run ./cmd/locksim -engine -protocol wound-wait -dbsize 400 -ltot 40 -ntrans 8
	$(GO) run -race ./cmd/locksim -crash 6 -dbsize 300 -ltot 30 -npros 3 -crashtxns 20
	$(GO) run ./cmd/bench -suite model -quick -out BENCH_model.json
	$(GO) run ./cmd/bench -suite locksrv -quick -out /tmp/BENCH_locksrv.quick.json
	$(GO) run ./cmd/bench -suite lockmgr -quick -out /tmp/BENCH_lockmgr.quick.json -compare BENCH_lockmgr.json
	$(GO) run ./cmd/bench -suite engine -quick -out /tmp/BENCH_engine.quick.json -compare BENCH_engine.json
	$(GO) run ./cmd/bench -suite wal -quick -out /tmp/BENCH_wal.quick.json -compare BENCH_wal.json
