GO ?= go

.PHONY: build test vet race bench locknet verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_model.json, the performance-trajectory file
# (full-length figure sweeps; see DESIGN.md §1.1 for the schema).
bench:
	$(GO) run ./cmd/bench -out BENCH_model.json

# locknet is the ISSUE 3 acceptance scenario: 1000 transactions through
# the network lock service behind the fault-injecting transport (drops,
# delays, partial writes); runNet fails unless the drain strands zero
# granules. See docs/LOCKSRV.md.
locknet:
	$(GO) run ./cmd/locksim -net 8 -nettxns 1000 -netfaults -ltot 100

# verify is the PR gate: static checks, the race-enabled test suite
# (which includes the locksrv fault-injection suite in
# internal/locksrv/harden_test.go), the lockd admin-endpoint smoke
# test (real lock traffic scraped through /metrics and validated as
# Prometheus text), the faulty network lock-service smoke run, and a
# quick benchmark smoke run that regenerates BENCH_model.json with
# shortened figure sweeps (engine microbenchmarks still run at full
# fidelity).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -count=2 -run 'TestAdmin' ./cmd/lockd/
	$(GO) run ./cmd/locksim -net 8 -nettxns 1000 -netfaults -ltot 100
	$(GO) run ./cmd/bench -quick -out BENCH_model.json
