GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench regenerates BENCH_model.json, the performance-trajectory file
# (full-length figure sweeps; see DESIGN.md §1.1 for the schema).
bench:
	$(GO) run ./cmd/bench -out BENCH_model.json

# verify is the PR gate: static checks, the race-enabled test suite and
# a quick benchmark smoke run that regenerates BENCH_model.json with
# shortened figure sweeps (engine microbenchmarks still run at full
# fidelity).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/bench -quick -out BENCH_model.json
