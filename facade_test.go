package granulock_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"granulock"
)

func shortParams() granulock.Params {
	p := granulock.DefaultParams()
	p.TMax = 200
	p.NPros = 5
	p.Ltot = 50
	return p
}

// TestRunOptionsEquivalence is the golden-run guarantee of the
// redesigned facade: attaching a metrics registry, a context, or both
// must not change the simulation's results by one bit.
func TestRunOptionsEquivalence(t *testing.T) {
	p := shortParams()
	plain, err := granulock.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := granulock.NewRegistry()
	instrumented, err := granulock.Run(p, granulock.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if plain != instrumented {
		t.Fatalf("WithMetrics changed the run:\nplain        %+v\ninstrumented %+v", plain, instrumented)
	}
	bounded, err := granulock.Run(p, granulock.WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if plain != bounded {
		t.Fatalf("WithContext changed the run:\nplain   %+v\nbounded %+v", plain, bounded)
	}
}

// TestRunWithMetricsPopulatesRegistry checks the instrumented run
// writes the sim families: event counters, the response histogram, and
// the output-parameter gauges.
func TestRunWithMetricsPopulatesRegistry(t *testing.T) {
	p := shortParams()
	reg := granulock.NewRegistry()
	m, err := granulock.Run(p, granulock.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Value("granulock_sim_events_total", map[string]string{"kind": "complete"}); !ok || v <= 0 {
		t.Fatalf("complete counter = %v (present %v)", v, ok)
	}
	if v, ok := reg.Value("granulock_sim_throughput", nil); !ok || v != m.Throughput {
		t.Fatalf("throughput gauge = %v (present %v), want %v", v, ok, m.Throughput)
	}
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "granulock_sim_response_time_units_count") {
		t.Fatal("response histogram missing from exposition")
	}
}

// TestRunWithObserverAndMetricsTee checks both hooks see the run.
func TestRunWithObserverAndMetricsTee(t *testing.T) {
	p := shortParams()
	reg := granulock.NewRegistry()
	var collector granulock.ResponseCollector
	if _, err := granulock.Run(p, granulock.WithObserver(&collector), granulock.WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	if len(collector.Responses) == 0 {
		t.Fatal("observer saw no completions through the tee")
	}
	if v, ok := reg.Value("granulock_sim_events_total", map[string]string{"kind": "complete"}); !ok || v != float64(len(collector.Responses)) {
		t.Fatalf("metrics completions %v (present %v) != observer samples %d", v, ok, len(collector.Responses))
	}
}

// TestRunContextCancellation checks a cancelled context aborts the run
// with its error.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := shortParams()
	if _, err := granulock.Run(p, granulock.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if _, _, err := granulock.OptimalGranularityContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled tuning returned %v, want context.Canceled", err)
	}
	if _, err := granulock.RunFigure("fig7", granulock.Options{TMax: 150, Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled figure returned %v, want context.Canceled", err)
	}
}

// TestRunContextDeadline checks a deadline that fires mid-run aborts
// promptly with DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	p := granulock.DefaultParams()
	p.TMax = 1e7 // far more work than a millisecond allows
	start := time.Now()
	_, err := granulock.Run(p, granulock.WithContext(ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunReplicationsOption checks the variadic replication path and
// its compatibility rules.
func TestRunReplicationsOption(t *testing.T) {
	p := shortParams()
	var rep granulock.Replicated
	avg, err := granulock.Run(p, granulock.WithReplications(3), granulock.WithReplicatedSummary(&rep))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("%d runs", len(rep.Runs))
	}
	// The field-wise mean and Welford's mean differ only in summation
	// order, so they agree to round-off.
	if diff := avg.Throughput - rep.Throughput.Mean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("averaged throughput %v != summary mean %v", avg.Throughput, rep.Throughput.Mean)
	}
	// The deprecated wrapper must agree with the option path.
	old, err := granulock.RunReplicated(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if old.Throughput.Mean != rep.Throughput.Mean {
		t.Fatalf("RunReplicated mean %v != option path %v", old.Throughput.Mean, rep.Throughput.Mean)
	}
	var collector granulock.ResponseCollector
	if _, err := granulock.Run(p, granulock.WithReplications(2), granulock.WithObserver(&collector)); err == nil {
		t.Fatal("observer + replications accepted")
	}
	if _, err := granulock.Run(p, granulock.WithReplications(0)); err == nil {
		t.Fatal("zero replications accepted")
	}
}
