// Command repro is the one-shot reproduction driver: it regenerates
// every paper artifact (Table 1, Figures 2–12), runs the extension
// experiments, cross-validates the simulator against the analytic model
// and the executable engine, and writes everything plus a summary
// report under an output directory.
//
// Usage:
//
//	repro [-out results] [-tmax 1000] [-reps 1] [-quick]
//
// -quick shortens the horizon for a fast smoke reproduction.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"granulock"
	"granulock/internal/engine"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	outDir := fs.String("out", "results", "output directory")
	tmax := fs.Float64("tmax", 1000, "simulation horizon per point")
	reps := fs.Int("reps", 1, "replications per point")
	quick := fs.Bool("quick", false, "fast smoke run (tmax 250)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*tmax = 250
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var report strings.Builder
	fmt.Fprintf(&report, "granulock reproduction report — tmax=%v, reps=%d\n", *tmax, *reps)
	fmt.Fprintf(&report, "===========================================\n\n")
	start := time.Now()

	// 1. Table 1 + all figures + extensions.
	if err := os.WriteFile(filepath.Join(*outDir, "table1.txt"), []byte(granulock.Table1()), 0o644); err != nil {
		return err
	}
	opts := granulock.Options{TMax: *tmax, Replications: *reps, Seed: 1}
	ids := append(granulock.FigureIDs(), granulock.ExtensionIDs()...)
	for _, id := range ids {
		t0 := time.Now()
		fig, err := granulock.RunFigure(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := os.WriteFile(filepath.Join(*outDir, id+".txt"), []byte(granulock.RenderText(fig)), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outDir, id+".csv"), []byte(granulock.RenderCSV(fig)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&report, "%-16s regenerated in %6.1fs\n", id, time.Since(t0).Seconds())
		fmt.Printf("done %s (%.1fs)\n", id, time.Since(t0).Seconds())
	}

	// 2. Simulated vs analytic optimum.
	p := granulock.DefaultParams()
	p.TMax = *tmax
	simBest, _, err := granulock.OptimalGranularity(p)
	if err != nil {
		return err
	}
	anaBest, _, err := granulock.PredictOptimalGranularity(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(&report, "\noptimal granularity: simulated %d, analytic %d (base config)\n", simBest, anaBest)

	// 3. Executable-engine cross-validation: blocking falls with
	// granularity and consistency holds.
	fmt.Fprintf(&report, "\nengine cross-validation (8 workers x 200 txns):\n")
	for _, granules := range []int{1, 10, 100, 1000} {
		db, err := engine.Open(1000,
			engine.WithNodes(4),
			engine.WithGranules(granules),
			engine.WithProtocol(engine.Conservative),
			engine.WithInitialValue(100))
		if err != nil {
			return err
		}
		before := db.TotalBalance()
		res, err := db.RunClosed(context.Background(), engine.Workload{
			Workers: 8, TxnsPerWorker: 200, TransfersPerTxn: 2,
			WorkPerTxn: 20000, Seed: 1,
		})
		if err != nil {
			return err
		}
		consistent := db.TotalBalance() == before
		fmt.Fprintf(&report, "  granules %5d: blocked %5d of %d, consistent=%v\n",
			granules, db.Stats().Lock.Blocks, res.Committed, consistent)
		if !consistent {
			return fmt.Errorf("engine consistency violated at %d granules", granules)
		}
	}

	fmt.Fprintf(&report, "\ntotal wall time %.1fs\n", time.Since(start).Seconds())
	reportPath := filepath.Join(*outDir, "REPORT.txt")
	if err := os.WriteFile(reportPath, []byte(report.String()), 0o644); err != nil {
		return err
	}
	fmt.Println("report:", reportPath)
	return nil
}
