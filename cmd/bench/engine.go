// The engine benchmark suite: end-to-end transaction throughput of the
// executable engine under every registered concurrency-control
// protocol, on a shared contended workload plus a granularity pair for
// the paper's own protocol. Output is BENCH_engine.json.
//
// Honesty notes: GOMAXPROCS is recorded because protocol differences
// that come from true parallelism cannot show up on one CPU (what
// remains visible there is lock-management overhead and restart
// waste); cross-protocol comparisons are therefore recorded without
// acceptance targets, and the one enforced floor is structural —
// conservative preclaiming at the finest granularity must hold at
// least half the throughput of the single-granule configuration, i.e.
// fine-granularity lock management must not cost more than the
// concurrency it buys back.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"granulock/internal/engine"
	"granulock/internal/engine/cc"
)

// resolveProtocolFlag validates -protocol against the cc registry;
// "list" prints the registered protocol names and exits.
func resolveProtocolFlag(p *string) error {
	if *p == "" {
		return nil
	}
	if *p == "list" {
		for _, name := range cc.Names() {
			fmt.Println(name)
		}
		os.Exit(0)
	}
	if _, ok := cc.Lookup(*p); !ok {
		return fmt.Errorf("unknown protocol %q (registered: %v)", *p, cc.Names())
	}
	return nil
}

// engEntry is one workload cell's record in BENCH_engine.json.
type engEntry struct {
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	Granules int    `json:"granules"`
	Workers  int    `json:"workers"`

	Ops       int64   `json:"ops"` // transactions committed
	NsPerOp   float64 `json:"ns_per_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Restarts counts protocol-initiated aborts that were retried
	// (deadlock victims, wounds, deaths, validation failures).
	Restarts int64 `json:"restarts"`
	// Blocks counts lock acquisitions that had to wait (0 for the
	// lockless optimistic protocol).
	Blocks int64 `json:"blocks"`
}

// engReport is the top-level BENCH_engine.json document. Comparisons
// reuse the locksrv suite's ratio schema so -compare works unchanged.
type engReport struct {
	Schema      string         `json:"schema"`
	Generated   string         `json:"generated"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Quick       bool           `json:"quick"`
	Benchmarks  []engEntry     `json:"benchmarks"`
	Comparisons []lsComparison `json:"comparisons"`
}

// engCell is one engine benchmark configuration.
type engCell struct {
	name     string
	protocol engine.Protocol
	granules int
	workload engine.Workload
}

// runEngCell opens a fresh database, runs the closed workload once to
// warm the scheduler and once for the measurement, and records the
// second run.
func runEngCell(c engCell) (engEntry, error) {
	run := func() (engine.Result, engine.Stats, error) {
		db, err := engine.Open(400,
			engine.WithNodes(4),
			engine.WithGranules(c.granules),
			engine.WithProtocol(c.protocol),
			engine.WithInitialValue(100))
		if err != nil {
			return engine.Result{}, engine.Stats{}, err
		}
		res, err := db.RunClosed(context.Background(), c.workload)
		return res, db.Stats(), err
	}
	if _, _, err := run(); err != nil { // warmup
		return engEntry{}, err
	}
	res, stats, err := run()
	if err != nil {
		return engEntry{}, err
	}
	e := engEntry{
		Name:      c.name,
		Protocol:  c.protocol,
		Granules:  c.granules,
		Workers:   c.workload.Workers,
		Ops:       res.Committed,
		OpsPerSec: res.ThroughputTPS,
		Restarts:  stats.Restarts,
		Blocks:    stats.Lock.Blocks,
	}
	if res.Committed > 0 {
		e.NsPerOp = float64(res.Elapsed.Nanoseconds()) / float64(res.Committed)
	}
	return e, nil
}

// runEngine executes the engine suite and returns the marshalled
// BENCH_engine.json document. protocolFilter restricts the protocol
// set ("" runs all registered protocols).
func runEngine(quick bool, protocolFilter string) ([]byte, error) {
	// Quick halves the workload rather than gutting it: engine cells are
	// milliseconds-cheap, and very short runs make the recorded ratios
	// scheduler-warmup noise.
	txns := 400
	if quick {
		txns = 200
	}
	contended := engine.Workload{
		Workers: 8, TxnsPerWorker: txns, TransfersPerTxn: 2,
		ReadFraction: 0.2, HotEntities: 40, ZipfSkew: 0.8,
		WorkPerTxn: 2000, Seed: 1,
	}

	protocols := cc.Names()
	if protocolFilter != "" {
		protocols = []string{protocolFilter}
	}

	rep := engReport{
		Schema:     "granulock-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	byName := make(map[string]engEntry)
	add := func(c engCell) error {
		fmt.Fprintln(os.Stderr, "bench: "+c.name)
		e, err := runEngCell(c)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		byName[c.name] = e
		return nil
	}

	for _, protocol := range protocols {
		c := engCell{
			name:     "engine/" + protocol + "/g40/contended",
			protocol: protocol,
			granules: 40,
			workload: contended,
		}
		if err := add(c); err != nil {
			return nil, err
		}
	}
	// The granularity pair behind the enforced floor (conservative only,
	// and only when it is in the protocol set).
	if protocolFilter == "" || protocolFilter == engine.Conservative {
		for _, g := range []int{1, 400} {
			c := engCell{
				name:     fmt.Sprintf("engine/conservative/g%d/contended", g),
				protocol: engine.Conservative,
				granules: g,
				workload: contended,
			}
			if err := add(c); err != nil {
				return nil, err
			}
		}
	}

	// Comparisons: each protocol against conservative preclaiming at the
	// shared cell (recorded, no targets — see the package comment), plus
	// the enforced fine-vs-coarse floor.
	ratio := func(name, num, den string, target float64) {
		n, okN := byName[num]
		d, okD := byName[den]
		if !okN || !okD || d.OpsPerSec <= 0 {
			return
		}
		c := lsComparison{
			Name:        name,
			Numerator:   num,
			Denominator: den,
			Speedup:     n.OpsPerSec / d.OpsPerSec,
			Target:      target,
		}
		if target > 0 {
			c.Pass = c.Speedup >= target
		}
		rep.Comparisons = append(rep.Comparisons, c)
	}
	// Cross-protocol ratios are recorded only at full fidelity: a quick
	// run is a few milliseconds per cell and its relative standings are
	// warmup noise, not measurements (the model suite drops its baseline
	// comparisons in quick runs for the same reason).
	if !quick {
		base := "engine/conservative/g40/contended"
		for _, protocol := range protocols {
			if protocol == engine.Conservative {
				continue
			}
			ratio("engine: "+protocol+" vs conservative (g40 contended)",
				"engine/"+protocol+"/g40/contended", base, 0)
		}
	}
	ratio("engine: conservative fine (g400) vs coarse (g1)",
		"engine/conservative/g400/contended", "engine/conservative/g1/contended", 0.5)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	for _, e := range rep.Benchmarks {
		fmt.Printf("%-42s %12.0f txn/s %8d restarts %8d blocks\n", e.Name, e.OpsPerSec, e.Restarts, e.Blocks)
	}
	for _, c := range rep.Comparisons {
		status := ""
		if c.Target > 0 {
			status = fmt.Sprintf("  (target %.2gx: pass=%v)", c.Target, c.Pass)
		}
		fmt.Printf("%-58s %6.2fx%s\n", c.Name, c.Speedup, status)
	}
	return data, nil
}
