// The WAL benchmark suite: group-commit throughput against a
// per-commit-sync baseline at increasing committer counts, plus
// snapshot-bounded vs full-history recovery. Output is BENCH_wal.json.
//
// The commit cells run over an in-memory sink whose Sync sleeps for a
// fixed 200µs — an NVMe-class fsync — so the measurement isolates what
// group commit actually buys: syncs per committed transaction. Real
// device numbers vary by an order of magnitude across machines; the
// sleep makes the ratio reproducible, and the enforced floors are
// ratios, never absolute throughput. The recovery cells use real
// file-backed logs built by the engine so the replay path measured is
// the one OpenDurable runs.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/engine"
	"granulock/internal/wal"
)

// syncCost is the modeled fsync latency of the commit cells.
const syncCost = 200 * time.Microsecond

// slowSink is an in-memory log device: writes are cheap, Sync costs
// syncCost and counts itself.
type slowSink struct {
	mu    sync.Mutex
	bytes int64
	syncs atomic.Int64
}

func (s *slowSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.bytes += int64(len(p))
	s.mu.Unlock()
	return len(p), nil
}

func (s *slowSink) Sync() error {
	s.syncs.Add(1)
	time.Sleep(syncCost)
	return nil
}

// walEntry is one cell's record in BENCH_wal.json.
type walEntry struct {
	Name       string  `json:"name"`
	Committers int     `json:"committers,omitempty"`
	Ops        int64   `json:"ops"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// Syncs is how many device syncs the cell's ops cost — the quantity
	// group commit exists to shrink. Zero for the recovery cells.
	Syncs int64 `json:"syncs,omitempty"`
}

// walReport is the top-level BENCH_wal.json document; it reuses the
// locksrv comparison schema so -compare works unchanged.
type walReport struct {
	Schema      string         `json:"schema"`
	Generated   string         `json:"generated"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Quick       bool           `json:"quick"`
	Benchmarks  []walEntry     `json:"benchmarks"`
	Comparisons []lsComparison `json:"comparisons"`
}

// commitGroup is the record shape one committed transfer writes: begin,
// two updates, commit.
func commitGroup(txn int64) []wal.Record {
	return []wal.Record{
		{Kind: wal.KindBegin, Txn: txn},
		{Kind: wal.KindUpdate, Txn: txn, Entity: txn % 97, Before: txn, After: txn + 1},
		{Kind: wal.KindUpdate, Txn: txn, Entity: txn % 89, Before: txn, After: txn - 1},
		{Kind: wal.KindCommit, Txn: txn},
	}
}

// benchGroupCommit measures commits/sec of c concurrent committers
// through a group-commit Log: every Commit blocks for durability, the
// flusher coalesces whatever queued into one write+sync.
func benchGroupCommit(c, perCommitter int) walEntry {
	sink := &slowSink{}
	log := wal.NewLog(sink)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perCommitter; i++ {
				txn := int64(w*perCommitter + i + 1)
				if err := log.Commit(commitGroup(txn)); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	log.Close()
	ops := int64(c * perCommitter)
	return walEntry{
		Name:       fmt.Sprintf("wal/commit/group/c%d", c),
		Committers: c,
		Ops:        ops,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
		Syncs:      sink.syncs.Load(),
	}
}

// benchSyncEach is the baseline the tentpole replaced: one append and
// one sync per commit, serialized by the single log stream's mutex.
func benchSyncEach(c, perCommitter int) walEntry {
	sink := &slowSink{}
	w := wal.NewWriter(sink)
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < c; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCommitter; i++ {
				txn := int64(g*perCommitter + i + 1)
				mu.Lock()
				err := w.AppendGroup(commitGroup(txn))
				if err == nil {
					err = sink.Sync()
				}
				mu.Unlock()
				if err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := int64(c * perCommitter)
	return walEntry{
		Name:       fmt.Sprintf("wal/commit/sync-each/c%d", c),
		Committers: c,
		Ops:        ops,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
		Syncs:      sink.syncs.Load(),
	}
}

// buildHistory runs a transfer workload against a fresh durable engine
// in dir, optionally checkpointing so only a short tail outlives the
// snapshot, and closes it. It returns the committed-transaction count.
func buildHistory(dir string, dbsize, txnsPerWorker int, checkpoint bool) (int64, error) {
	db, _, err := engine.OpenDurable(dir, dbsize,
		engine.WithNodes(4),
		engine.WithWALOptions(wal.WithPreallocate(0)),
	)
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	res, err := db.RunClosed(ctx, engine.Workload{
		Workers: 4, TxnsPerWorker: txnsPerWorker, TransfersPerTxn: 2, Seed: 7,
	})
	if err != nil {
		db.Close()
		return 0, err
	}
	committed := res.Committed
	if checkpoint {
		if err := db.Checkpoint(ctx); err != nil {
			db.Close()
			return 0, err
		}
		tail, err := db.RunClosed(ctx, engine.Workload{
			Workers: 2, TxnsPerWorker: 10, TransfersPerTxn: 2, Seed: 11,
		})
		if err != nil {
			db.Close()
			return 0, err
		}
		committed += tail.Committed
	}
	return committed, db.Close()
}

// benchRecovery measures recoveries/sec of reopening dir. Recovery
// does not mutate the logs, so repeated reopens replay identical state.
func benchRecovery(name, dir string, dbsize, iters int) (walEntry, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		db, _, err := engine.OpenDurable(dir, dbsize,
			engine.WithNodes(4),
			engine.WithWALOptions(wal.WithPreallocate(0)),
		)
		if err != nil {
			return walEntry{}, err
		}
		if err := db.Close(); err != nil {
			return walEntry{}, err
		}
	}
	elapsed := time.Since(start)
	return walEntry{
		Name:      name,
		Ops:       int64(iters),
		NsPerOp:   float64(elapsed.Nanoseconds()) / float64(iters),
		OpsPerSec: float64(iters) / elapsed.Seconds(),
	}, nil
}

// runWAL executes the WAL suite and returns the marshalled
// BENCH_wal.json document.
func runWAL(quick bool) ([]byte, error) {
	perCommitter := 200
	historyTxns := 1000 // per worker, 4 workers
	recoveryIters := 20
	if quick {
		perCommitter = 50
		historyTxns = 250
		recoveryIters = 8
	}
	const dbsize = 500

	rep := walReport{
		Schema:     "granulock-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	byName := make(map[string]walEntry)
	add := func(e walEntry) {
		rep.Benchmarks = append(rep.Benchmarks, e)
		byName[e.Name] = e
	}

	for _, c := range []int{1, 8, 64} {
		name := fmt.Sprintf("wal/commit/sync-each/c%d", c)
		fmt.Fprintln(os.Stderr, "bench: "+name)
		add(benchSyncEach(c, perCommitter))
		name = fmt.Sprintf("wal/commit/group/c%d", c)
		fmt.Fprintln(os.Stderr, "bench: "+name)
		add(benchGroupCommit(c, perCommitter))
	}

	// Recovery: the same class of history twice — once left as raw logs,
	// once checkpointed down to a snapshot plus a short tail.
	tmp, err := os.MkdirTemp("", "granulock-bench-wal-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	fullDir := filepath.Join(tmp, "full")
	snapDir := filepath.Join(tmp, "snap")
	if _, err := buildHistory(fullDir, dbsize, historyTxns, false); err != nil {
		return nil, fmt.Errorf("full history: %w", err)
	}
	if _, err := buildHistory(snapDir, dbsize, historyTxns, true); err != nil {
		return nil, fmt.Errorf("checkpointed history: %w", err)
	}
	fmt.Fprintln(os.Stderr, "bench: wal/recovery/full-history")
	e, err := benchRecovery("wal/recovery/full-history", fullDir, dbsize, recoveryIters)
	if err != nil {
		return nil, err
	}
	add(e)
	fmt.Fprintln(os.Stderr, "bench: wal/recovery/snapshot-bounded")
	if e, err = benchRecovery("wal/recovery/snapshot-bounded", snapDir, dbsize, recoveryIters); err != nil {
		return nil, err
	}
	add(e)

	ratio := func(name, num, den string, target float64) {
		n, okN := byName[num]
		d, okD := byName[den]
		if !okN || !okD || d.OpsPerSec <= 0 {
			return
		}
		c := lsComparison{
			Name:        name,
			Numerator:   num,
			Denominator: den,
			Speedup:     n.OpsPerSec / d.OpsPerSec,
			Target:      target,
		}
		if target > 0 {
			c.Pass = c.Speedup >= target
		}
		rep.Comparisons = append(rep.Comparisons, c)
	}
	// The single-committer cell is recorded without a floor: with no one
	// to share a sync with, group commit can only match the baseline.
	ratio("wal: group commit vs per-commit sync (1 committer)",
		"wal/commit/group/c1", "wal/commit/sync-each/c1", 0)
	ratio("wal: group commit vs per-commit sync (8 committers)",
		"wal/commit/group/c8", "wal/commit/sync-each/c8", 3.0)
	ratio("wal: group commit vs per-commit sync (64 committers)",
		"wal/commit/group/c64", "wal/commit/sync-each/c64", 3.0)
	// The recovery speedup's magnitude is a function of how much history
	// the snapshot truncates, so quick and full runs are deliberately
	// named apart: the cross-fidelity ratio diff skips them, while the
	// 2x floor still gates every fresh run via its recorded target.
	ratio(fmt.Sprintf("wal: snapshot-bounded vs full-history recovery (%d-txn history)", 4*historyTxns),
		"wal/recovery/snapshot-bounded", "wal/recovery/full-history", 2.0)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	for _, e := range rep.Benchmarks {
		fmt.Printf("%-34s %12.0f ops/s %10.0f ns/op %8d syncs\n", e.Name, e.OpsPerSec, e.NsPerOp, e.Syncs)
	}
	for _, c := range rep.Comparisons {
		status := ""
		if c.Target > 0 {
			status = fmt.Sprintf("  (target %.2gx: pass=%v)", c.Target, c.Pass)
		}
		fmt.Printf("%-58s %6.2fx%s\n", c.Name, c.Speedup, status)
	}
	return data, nil
}
