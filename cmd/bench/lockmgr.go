// The lockmgr benchmark suite: in-process cost of an acquire/release
// pair through lockmgr.Table with the lock-free fast path enabled vs
// force-disabled (the stripe-locked baseline). The headline comparison
// — uncontended single-granule claim, fast vs stripe-locked — is the
// PR's acceptance number (≥ 5×). Multi-granule claims (where the fast
// path falls back by design) and a contended shared pool are reported
// alongside to show the fallback costs nothing and contended
// throughput degrades gracefully rather than collapsing.
//
// Honesty notes: GOMAXPROCS is recorded (on one CPU the contended
// scenario measures handoff cost, not parallelism), and every fast
// run is checked against the table's own counters — an entry is only
// reported as "fast" if the fast path actually granted during it.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"granulock/internal/lockmgr"
)

// lmScenario describes one lockmgr microbenchmark configuration.
type lmScenario struct {
	name     string
	fast     bool // lock-free fast path enabled
	shards   int
	granules int // granules per claim; 0 = incremental single-granule step
	pool     int // >0: contended RunParallel workload over a shared pool
}

// lmWorkingSet is the number of distinct granules an uncontended
// scenario cycles through — large enough to defeat any single-granule
// special case, small enough to stay cache-resident like a real hot set.
const lmWorkingSet = 512

// lmTable builds the scenario's table.
func lmTable(sc lmScenario) *lockmgr.Table {
	return lockmgr.NewTable(lockmgr.WithShards(sc.shards), lockmgr.WithFastPath(sc.fast))
}

// lmWarm claims and releases every granule the scenario will touch
// once, so first-touch work (map entry creation, fast-index promotion)
// happens before the timer, for fast and slow tables alike. The fast
// path grants only on granules already promoted into the per-shard
// fast index, which happens on the first fully-released GC pass.
func lmWarm(table *lockmgr.Table, granules int) error {
	ctx := context.Background()
	span := lmWorkingSet * max(granules, 1)
	for g := 0; g < span; g++ {
		txn := lockmgr.TxnID(txnSeq.Add(1))
		reqs := []lockmgr.Request{{Granule: lockmgr.Granule(g), Mode: lockmgr.ModeExclusive}}
		if err := table.AcquireAll(ctx, txn, reqs); err != nil {
			return err
		}
		table.ReleaseAll(txn)
	}
	return nil
}

// lmPairBench measures one uncontended acquire/release pair: a
// conservative claim of sc.granules granules, or an incremental step
// when sc.granules is 0. Every iteration is a fresh transaction over a
// cycling working set, so each pair pays full first-acquisition cost —
// no re-acquire shortcuts.
func lmPairBench(sc lmScenario) (lsEntry, error) {
	table := lmTable(sc)
	ctx := context.Background()
	var failure error
	r := testing.Benchmark(func(b *testing.B) {
		if err := lmWarm(table, sc.granules); err != nil {
			failure = err
			b.Fatal(err)
		}
		b.ReportAllocs()
		if sc.granules == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				txn := lockmgr.TxnID(txnSeq.Add(1))
				g := lockmgr.Granule(i % lmWorkingSet)
				if err := table.Acquire(ctx, txn, g, lockmgr.ModeExclusive); err != nil {
					failure = err
					b.Fatal(err)
				}
				table.ReleaseAll(txn)
			}
			return
		}
		reqs := make([]lockmgr.Request, sc.granules)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			txn := lockmgr.TxnID(txnSeq.Add(1))
			for j := range reqs {
				reqs[j] = lockmgr.Request{Granule: lockmgr.Granule((i%lmWorkingSet)*sc.granules + j), Mode: lockmgr.ModeExclusive}
			}
			if err := table.AcquireAll(ctx, txn, reqs); err != nil {
				failure = err
				b.Fatal(err)
			}
			table.ReleaseAll(txn)
		}
	})
	if failure != nil {
		return lsEntry{}, fmt.Errorf("%s: %w", sc.name, failure)
	}
	return lmRecord(sc, table, r)
}

// lmContendedBench measures the table under goroutine contention on a
// small shared pool of exclusively-locked granules — the regime where
// the fast path's CAS keeps failing and the adaptive spin-then-park
// discipline takes over.
func lmContendedBench(sc lmScenario) (lsEntry, error) {
	table := lmTable(sc)
	ctx := context.Background()
	var failure error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(4)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				txn := lockmgr.TxnID(txnSeq.Add(1))
				g := lockmgr.Granule(int(txn*7) % sc.pool)
				if err := table.AcquireAll(ctx, txn, []lockmgr.Request{{Granule: g, Mode: lockmgr.ModeExclusive}}); err != nil {
					failure = err
					b.Error(err)
					return
				}
				table.ReleaseAll(txn)
			}
		})
	})
	if failure != nil {
		return lsEntry{}, fmt.Errorf("%s: %w", sc.name, failure)
	}
	return lmRecord(sc, table, r)
}

// lmRecord converts a benchmark result into a report entry, after
// checking the table's own counters agree with the scenario label: a
// "fast" entry must have fast-path grants, a "slow" entry must have
// none. A silent misconfiguration here would make the headline ratio a
// comparison of the slow path against itself.
func lmRecord(sc lmScenario, table *lockmgr.Table, r testing.BenchmarkResult) (lsEntry, error) {
	fs := table.FastStats()
	if sc.fast && sc.granules <= 1 && sc.pool == 0 && fs.Grants == 0 {
		return lsEntry{}, fmt.Errorf("%s: fast path enabled but granted nothing (fallbacks=%d)", sc.name, fs.Fallbacks)
	}
	if !sc.fast && (fs.Grants != 0 || fs.Releases != 0) {
		return lsEntry{}, fmt.Errorf("%s: fast path disabled but counted %d grants / %d releases", sc.name, fs.Grants, fs.Releases)
	}
	ns := float64(r.NsPerOp())
	return lsEntry{
		Name:        sc.name,
		Shards:      sc.shards,
		Pool:        sc.pool,
		Fast:        sc.fast,
		Ops:         int64(r.N),
		NsPerOp:     ns,
		OpsPerSec:   1e9 / ns,
		AllocsPerOp: float64(r.AllocsPerOp()),
	}, nil
}

// runLockmgr executes the lockmgr fast-path suite and returns the
// marshalled BENCH_lockmgr.json document. The workload is iteration-
// scaled by the benchmark harness, so -quick changes nothing about the
// measurement itself; the flag is still recorded so -compare can tell
// a CI smoke report from the checked-in full run and fall back to
// machine-independent ratio comparison.
func runLockmgr(quick bool) ([]byte, error) {
	scenarios := []lmScenario{
		{name: "lockmgr/claim-1g/fast", fast: true, shards: 16, granules: 1},
		{name: "lockmgr/claim-1g/slow", fast: false, shards: 16, granules: 1},
		{name: "lockmgr/step-1g/fast", fast: true, shards: 16, granules: 0},
		{name: "lockmgr/step-1g/slow", fast: false, shards: 16, granules: 0},
		{name: "lockmgr/claim-1g/fast/shards=1", fast: true, shards: 1, granules: 1},
		{name: "lockmgr/claim-1g/slow/shards=1", fast: false, shards: 1, granules: 1},
		{name: "lockmgr/claim-8g/fast", fast: true, shards: 16, granules: 8},
		{name: "lockmgr/claim-8g/slow", fast: false, shards: 16, granules: 8},
		{name: "lockmgr/contended/fast", fast: true, shards: 16, pool: 16},
		{name: "lockmgr/contended/slow", fast: false, shards: 16, pool: 16},
	}

	rep := lsReport{
		Schema:     "granulock-bench-lockmgr/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	for _, sc := range scenarios {
		if benchFilter != "" && !strings.Contains(sc.name, benchFilter) {
			continue
		}
		fmt.Fprintln(os.Stderr, "bench: "+sc.name)
		var e lsEntry
		var err error
		if sc.pool > 0 {
			e, err = lmContendedBench(sc)
		} else {
			e, err = lmPairBench(sc)
		}
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	comparisons := []struct {
		name, num, den string
		target         float64
	}{
		{"fast path, uncontended claim (fast vs stripe-locked, headline)",
			"lockmgr/claim-1g/fast", "lockmgr/claim-1g/slow", 5},
		{"fast path, uncontended incremental step",
			"lockmgr/step-1g/fast", "lockmgr/step-1g/slow", 0},
		{"fast path, single stripe (no sharding help)",
			"lockmgr/claim-1g/fast/shards=1", "lockmgr/claim-1g/slow/shards=1", 0},
		{"multi-granule claim parity (fast path falls back)",
			"lockmgr/claim-8g/fast", "lockmgr/claim-8g/slow", 0},
		{"contended shared pool (graceful degradation)",
			"lockmgr/contended/fast", "lockmgr/contended/slow", 0},
	}
	for _, c := range comparisons {
		if benchFilter != "" {
			break
		}
		cmp, err := compare(rep.Benchmarks, c.name, c.num, c.den, c.target)
		if err != nil {
			return nil, err
		}
		rep.Comparisons = append(rep.Comparisons, cmp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')

	for _, e := range rep.Benchmarks {
		fmt.Printf("%-36s %12.1f ns/op %10.0f allocs/op %14.0f ops/sec\n", e.Name, e.NsPerOp, e.AllocsPerOp, e.OpsPerSec)
	}
	for _, c := range rep.Comparisons {
		mark := ""
		if c.Target > 0 {
			if c.Pass {
				mark = fmt.Sprintf("  PASS (target %.3gx)", c.Target)
			} else {
				mark = fmt.Sprintf("  FAIL (target %.3gx)", c.Target)
			}
		}
		fmt.Printf("%-58s %6.2fx%s\n", c.Name, c.Speedup, mark)
	}
	return data, nil
}
