// Cluster-scaling scenarios for the locksrv suite: throughput of the
// consistent-hash partitioned lock cluster at 1, 2 and 4 nodes, driven
// by cluster-aware v2 clients over a transport with an injected fixed
// round-trip time.
//
// Honesty notes. On this repository's 1-CPU bench machine a raw
// loopback cluster curve is flat: every node shares the one core, so
// adding nodes adds no capacity and the measurement would say nothing.
// What partitioning actually buys a deployment is more serial request
// streams served at a fixed per-request latency — each node terminates
// its own partition's RTTs. The scenarios model that directly: every
// connection's writes pay a fixed ~400us delay (~0.8ms per
// acquire/release pair, a LAN-ish RTT), each node is given the same
// fixed fleet of serial client streams (admission capacity), and the
// reported scaling is streams-times-nodes at constant per-stream
// latency. The delay dominates wall-clock, so the curve measures
// protocol and routing behavior, not loopback CPU scheduling; CPU per
// message is unchanged and is covered by the non-delayed scenarios in
// locksrv.go. A fourth scenario runs the same delayed workload through
// a plain (non-cluster) v2 client against a standalone server, so the
// routing layer's overhead at 1 node is its own recorded number rather
// than a hidden tax inside the curve.
package main

import (
	"fmt"
	"net"
	"sync"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/locksrv"
)

// benchRTTDelay is the injected one-way write delay; an acquire or
// release round trip costs one delay, an acquire+release pair two. It
// is deliberately WAN-ish rather than LAN-ish: timer wake-up latency
// on a loaded single-CPU runner is around a millisecond, so a
// sub-millisecond delay would measure the Go timer wheel, not the
// protocol.
const benchRTTDelay = 8 * time.Millisecond

// benchStreamsPerNode is the serial client-stream fleet each node is
// given — the admission capacity a partition terminates.
const benchStreamsPerNode = 8

// delayConn injects a fixed delay ahead of every write, modelling the
// client->server propagation of a network with a real RTT. Responses
// ride the same TCP connection, so one request/response exchange pays
// one delay end to end.
type delayConn struct {
	net.Conn
	d time.Duration
}

func (c delayConn) Write(p []byte) (int, error) {
	time.Sleep(c.d)
	return c.Conn.Write(p)
}

// delayDialer dials TCP and wraps the connection in a delayConn.
func delayDialer(d time.Duration) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return delayConn{Conn: conn, d: d}, nil
	}
}

// startBenchCluster stands up an n-node cluster with heartbeats off —
// the bench wants steady-state routing, not failure detection — and
// returns the member addresses, the servers and their tables.
func startBenchCluster(n int) ([]string, []*locksrv.Server, []*lockmgr.Table, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
	}
	tables := make([]*lockmgr.Table, n)
	servers := make([]*locksrv.Server, n)
	for i := range servers {
		tables[i] = lockmgr.NewTable(lockmgr.WithShards(16))
		servers[i] = locksrv.NewServer(listeners[i], tables[i],
			locksrv.WithCluster(locksrv.ClusterConfig{
				Nodes: addrs,
				Self:  i,
				// HeartbeatEvery zero: no failure monitor.
			}))
		go servers[i].Serve()
	}
	return addrs, servers, tables, nil
}

// runClusterScenario measures an n-node cluster serving
// benchStreamsPerNode*n serial streams of single-granule exclusive
// acquire/release pairs over the delayed transport.
func runClusterScenario(name string, nodes, pairsPerStream int) (lsEntry, error) {
	addrs, servers, _, err := startBenchCluster(nodes)
	if err != nil {
		return lsEntry{}, err
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	streams := benchStreamsPerNode * nodes
	clients := make([]*locksrv.ClusterClient, streams)
	for i := range clients {
		cc, err := locksrv.DialCluster(addrs,
			locksrv.WithDialer(delayDialer(benchRTTDelay)),
			locksrv.WithLeaseInterval(0)) // no keepalive noise in the measurement
		if err != nil {
			return lsEntry{}, err
		}
		defer cc.Close()
		clients[i] = cc
	}

	run := func(gw int, cc *locksrv.ClusterClient) error {
		for op := 0; op < pairsPerStream; op++ {
			txn := txnSeq.Add(1)
			req := []lockmgr.Request{{Granule: lockmgr.Granule(gw*1024 + op%512), Mode: lockmgr.ModeExclusive}}
			if err := cc.AcquireAll(txn, req); err != nil {
				return err
			}
			if err := cc.ReleaseAll(txn); err != nil {
				return err
			}
		}
		return nil
	}

	errCh := make(chan error, streams)
	var wg sync.WaitGroup
	start := time.Now()
	for i, cc := range clients {
		i, cc := i, cc
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := run(i, cc); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return lsEntry{}, fmt.Errorf("%s: %w", name, err)
	default:
	}

	pairs := int64(streams) * int64(pairsPerStream)
	ns := float64(elapsed.Nanoseconds())
	return lsEntry{
		Name:      name,
		Proto:     "v2",
		Mode:      "cluster",
		Shards:    16,
		Clients:   streams,
		Workers:   1,
		Nodes:     nodes,
		RTTMs:     float64(2*benchRTTDelay) / float64(time.Millisecond),
		Ops:       pairs,
		NsPerOp:   ns / float64(pairs),
		OpsPerSec: float64(pairs) / ns * 1e9,
	}, nil
}

// runDirectDelayScenario is the routing-overhead baseline: the same
// delayed workload as a 1-node cluster scenario, but through plain v2
// clients against a standalone (non-cluster) server, so the difference
// to nodes=1 is exactly the cluster client's routing layer.
func runDirectDelayScenario(name string, pairsPerStream int) (lsEntry, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return lsEntry{}, err
	}
	srv := locksrv.NewServer(lis, lockmgr.NewTable(lockmgr.WithShards(16)))
	go srv.Serve()
	defer srv.Close()
	addr := lis.Addr().String()

	const streams = benchStreamsPerNode
	clients := make([]*locksrv.ClientV2, streams)
	for i := range clients {
		c, err := locksrv.DialV2(addr, locksrv.WithDialer(delayDialer(benchRTTDelay)))
		if err != nil {
			return lsEntry{}, err
		}
		defer c.Close()
		clients[i] = c
	}

	errCh := make(chan error, streams)
	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := 0; op < pairsPerStream; op++ {
				txn := txnSeq.Add(1)
				req := []lockmgr.Request{{Granule: lockmgr.Granule(i*1024 + op%512), Mode: lockmgr.ModeExclusive}}
				if err := c.AcquireAll(txn, req); err != nil {
					errCh <- err
					return
				}
				if err := c.ReleaseAll(txn); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return lsEntry{}, fmt.Errorf("%s: %w", name, err)
	default:
	}

	pairs := int64(streams) * int64(pairsPerStream)
	ns := float64(elapsed.Nanoseconds())
	return lsEntry{
		Name:      name,
		Proto:     "v2",
		Mode:      "serial",
		Shards:    16,
		Clients:   streams,
		Workers:   1,
		RTTMs:     float64(2*benchRTTDelay) / float64(time.Millisecond),
		Ops:       pairs,
		NsPerOp:   ns / float64(pairs),
		OpsPerSec: float64(pairs) / ns * 1e9,
	}, nil
}
