// The locksrv benchmark suite: service-level throughput of the network
// lock server over loopback TCP, crossing wire protocol (v1 JSON serial
// vs v2 binary pipelined vs v2 batched) with lock-table sharding (1 vs
// 16 stripes) and contention (private granules vs a small shared pool),
// plus in-process lockmgr microbenchmarks and the cluster-scaling
// curve over a fixed-RTT transport (cluster.go). The headline
// comparisons — v2 pipelined + sharded vs v1 serial + single stripe,
// uncontended (4x floor), and 2-node vs 1-node cluster throughput
// (1.8x floor) — are acceptance numbers.
//
// Honesty notes baked into the output: GOMAXPROCS is recorded because
// sharding cannot buy wall-clock parallelism on one CPU (its effect
// there is limited to shorter critical sections), and contended numbers
// are reported alongside uncontended ones rather than hidden.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/locksrv"
)

// lsEntry is one scenario's record in BENCH_locksrv.json.
type lsEntry struct {
	Name    string `json:"name"`
	Proto   string `json:"proto,omitempty"`   // "v1" | "v2"; empty for lockmgr microbenches
	Mode    string `json:"mode,omitempty"`    // "serial" | "pipelined" | "batched"
	Shards  int    `json:"shards,omitempty"`  // lock-table stripes
	Clients int    `json:"clients,omitempty"` // connections
	Workers int    `json:"workers,omitempty"` // concurrent request loops per connection
	Batch   int    `json:"batch,omitempty"`   // claims per acquireN frame (batched mode)
	Pool    int    `json:"pool,omitempty"`    // shared granule pool (contended runs)
	Fast    bool   `json:"fast,omitempty"`    // lock-free fast path enabled (lockmgr suite)
	Nodes   int    `json:"nodes,omitempty"`   // cluster members (cluster scenarios)

	// RTTMs is the injected per-pair round-trip time of the delayed
	// transport (cluster scenarios; see cluster.go).
	RTTMs float64 `json:"rtt_ms,omitempty"`

	Ops         int64   `json:"ops"` // acquire+release pairs completed
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"` // lockmgr microbenches only
}

// lsComparison is a derived ratio between two scenarios.
type lsComparison struct {
	Name        string  `json:"name"`
	Numerator   string  `json:"numerator"`
	Denominator string  `json:"denominator"`
	Speedup     float64 `json:"speedup"`
	Target      float64 `json:"target,omitempty"` // acceptance floor, when one exists
	Pass        bool    `json:"pass,omitempty"`
}

// lsReport is the top-level BENCH_locksrv.json document.
type lsReport struct {
	Schema      string         `json:"schema"`
	Generated   string         `json:"generated"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Quick       bool           `json:"quick"`
	Benchmarks  []lsEntry      `json:"benchmarks"`
	Comparisons []lsComparison `json:"comparisons"`
}

// scenario describes one service benchmark configuration.
type scenario struct {
	name    string
	proto   string // "v1" | "v2"
	mode    string // "serial" | "pipelined" | "batched"
	shards  int
	clients int
	workers int // per client; 1 for serial
	batch   int // batched mode only
	pool    int // 0: uncontended (private granules per worker)
}

// txnSeq hands every benchmark transaction a process-unique id.
var txnSeq atomic.Int64

// benchFilter, when non-empty, restricts the locksrv suite to scenarios
// whose name contains it (set by the -run flag; comparisons are skipped
// because their inputs may be missing).
var benchFilter string

// runScenario stands up a fresh server with the scenario's table, runs
// the workload, and returns the measured entry.
func runScenario(sc scenario, pairsPerWorker int) (lsEntry, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return lsEntry{}, err
	}
	table := lockmgr.NewTable(lockmgr.WithShards(sc.shards))
	srv := locksrv.NewServer(lis, table)
	go srv.Serve()
	defer srv.Close()
	addr := lis.Addr().String()

	type worker struct {
		run func() error
	}
	var workers []worker
	var closers []func() error
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	// granuleFor maps (global worker index, op index) to a granule:
	// private 512-granule range per worker when uncontended, a small
	// shared pool when contended.
	granuleFor := func(gw, op int) lockmgr.Granule {
		if sc.pool > 0 {
			return lockmgr.Granule((op*7 + gw*13) % sc.pool)
		}
		return lockmgr.Granule(gw*1024 + op%512)
	}

	for ci := 0; ci < sc.clients; ci++ {
		switch sc.proto {
		case "v1":
			c, err := locksrv.Dial(addr)
			if err != nil {
				return lsEntry{}, err
			}
			closers = append(closers, c.Close)
			for w := 0; w < sc.workers; w++ {
				gw := ci*sc.workers + w
				workers = append(workers, worker{run: func() error {
					for op := 0; op < pairsPerWorker; op++ {
						txn := txnSeq.Add(1)
						req := []lockmgr.Request{{Granule: granuleFor(gw, op), Mode: lockmgr.ModeExclusive}}
						if err := c.AcquireAll(txn, req); err != nil {
							return err
						}
						if err := c.ReleaseAll(txn); err != nil {
							return err
						}
					}
					return nil
				}})
			}
		case "v2":
			c, err := locksrv.DialV2(addr)
			if err != nil {
				return lsEntry{}, err
			}
			closers = append(closers, c.Close)
			for w := 0; w < sc.workers; w++ {
				gw := ci*sc.workers + w
				if sc.mode == "batched" {
					workers = append(workers, worker{run: func() error {
						for done := 0; done < pairsPerWorker; done += sc.batch {
							n := sc.batch
							if left := pairsPerWorker - done; left < n {
								n = left
							}
							claims := make([]locksrv.Claim, n)
							txns := make([]int64, n)
							for i := range claims {
								txns[i] = txnSeq.Add(1)
								claims[i] = locksrv.Claim{
									Txn:  txns[i],
									Reqs: []lockmgr.Request{{Granule: granuleFor(gw, done+i), Mode: lockmgr.ModeExclusive}},
								}
							}
							outs, err := c.AcquireN(claims)
							if err != nil {
								return err
							}
							for i, e := range outs {
								if e != nil {
									return fmt.Errorf("claim %d: %w", i, e)
								}
							}
							routs, err := c.ReleaseN(txns)
							if err != nil {
								return err
							}
							for i, e := range routs {
								if e != nil {
									return fmt.Errorf("release %d: %w", i, e)
								}
							}
						}
						return nil
					}})
					continue
				}
				workers = append(workers, worker{run: func() error {
					for op := 0; op < pairsPerWorker; op++ {
						txn := txnSeq.Add(1)
						req := []lockmgr.Request{{Granule: granuleFor(gw, op), Mode: lockmgr.ModeExclusive}}
						if err := c.AcquireAll(txn, req); err != nil {
							return err
						}
						if err := c.ReleaseAll(txn); err != nil {
							return err
						}
					}
					return nil
				}})
			}
		default:
			return lsEntry{}, fmt.Errorf("unknown proto %q", sc.proto)
		}
	}

	// Batched workers count pairs the same way (pairsPerWorker each), so
	// uncontended granule ranges stay private per worker.
	errCh := make(chan error, len(workers))
	var wg sync.WaitGroup
	start := time.Now()
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.run(); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return lsEntry{}, fmt.Errorf("%s: %w", sc.name, err)
	default:
	}

	pairs := int64(len(workers)) * int64(pairsPerWorker)
	ns := float64(elapsed.Nanoseconds())
	return lsEntry{
		Name:      sc.name,
		Proto:     sc.proto,
		Mode:      sc.mode,
		Shards:    sc.shards,
		Clients:   sc.clients,
		Workers:   sc.workers,
		Batch:     sc.batch,
		Pool:      sc.pool,
		Ops:       pairs,
		NsPerOp:   ns / float64(pairs),
		OpsPerSec: float64(pairs) / ns * 1e9,
	}, nil
}

// lockmgrBench measures one in-process table configuration with the
// standard benchmark harness.
func lockmgrBench(name string, shards, granulesPerClaim int) lsEntry {
	table := lockmgr.NewTable(lockmgr.WithShards(shards))
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		reqs := make([]lockmgr.Request, granulesPerClaim)
		for i := 0; i < b.N; i++ {
			txn := lockmgr.TxnID(txnSeq.Add(1))
			for j := range reqs {
				reqs[j] = lockmgr.Request{Granule: lockmgr.Granule((i%512)*16 + j), Mode: lockmgr.ModeExclusive}
			}
			if err := table.AcquireAll(context.Background(), txn, reqs); err != nil {
				b.Fatal(err)
			}
			table.ReleaseAll(txn)
		}
	})
	ns := float64(r.NsPerOp())
	return lsEntry{
		Name:        name,
		Shards:      shards,
		Ops:         int64(r.N),
		NsPerOp:     ns,
		OpsPerSec:   1e9 / ns,
		AllocsPerOp: float64(r.AllocsPerOp()),
	}
}

// lockmgrContendedBench measures the table under goroutine contention on
// a small shared pool.
func lockmgrContendedBench(name string, shards int) lsEntry {
	table := lockmgr.NewTable(lockmgr.WithShards(shards))
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(4)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				txn := lockmgr.TxnID(txnSeq.Add(1))
				g := lockmgr.Granule(int(txn*7) % 16)
				if err := table.AcquireAll(context.Background(), txn, []lockmgr.Request{{Granule: g, Mode: lockmgr.ModeExclusive}}); err != nil {
					b.Error(err)
					return
				}
				table.ReleaseAll(txn)
				i++
			}
		})
	})
	ns := float64(r.NsPerOp())
	return lsEntry{
		Name:        name,
		Shards:      shards,
		Ops:         int64(r.N),
		NsPerOp:     ns,
		OpsPerSec:   1e9 / ns,
		AllocsPerOp: float64(r.AllocsPerOp()),
	}
}

// compare derives a named speedup ratio between two recorded entries.
func compare(entries []lsEntry, name, num, den string, target float64) (lsComparison, error) {
	find := func(n string) (lsEntry, error) {
		for _, e := range entries {
			if e.Name == n {
				return e, nil
			}
		}
		return lsEntry{}, fmt.Errorf("comparison %s: no entry %q", name, n)
	}
	ne, err := find(num)
	if err != nil {
		return lsComparison{}, err
	}
	de, err := find(den)
	if err != nil {
		return lsComparison{}, err
	}
	c := lsComparison{
		Name:        name,
		Numerator:   num,
		Denominator: den,
		Speedup:     ne.OpsPerSec / de.OpsPerSec,
		Target:      target,
	}
	if target > 0 {
		c.Pass = c.Speedup >= target
	}
	return c, nil
}

// runLocksrv executes the lock-service suite and returns the marshalled
// BENCH_locksrv.json document.
func runLocksrv(quick bool) ([]byte, error) {
	const (
		clients  = 8
		inflight = 32
		batch    = 32
		pool     = 8
	)
	serialPairs, pipePairs := 4000, 512
	if quick {
		serialPairs, pipePairs = 200, 8
	}

	scenarios := []struct {
		sc    scenario
		pairs int
	}{
		{scenario{name: "locksrv/v1/serial/uncontended/shards=1", proto: "v1", mode: "serial", shards: 1, clients: clients, workers: 1}, serialPairs},
		{scenario{name: "locksrv/v2/serial/uncontended/shards=1", proto: "v2", mode: "serial", shards: 1, clients: clients, workers: 1}, serialPairs},
		{scenario{name: "locksrv/v2/pipelined/uncontended/shards=1", proto: "v2", mode: "pipelined", shards: 1, clients: clients, workers: inflight}, pipePairs},
		{scenario{name: "locksrv/v2/pipelined/uncontended/shards=16", proto: "v2", mode: "pipelined", shards: 16, clients: clients, workers: inflight}, pipePairs},
		{scenario{name: "locksrv/v2/batched/uncontended/shards=16", proto: "v2", mode: "batched", shards: 16, clients: clients, workers: 1, batch: batch}, serialPairs},
		{scenario{name: "locksrv/v1/serial/contended/shards=1", proto: "v1", mode: "serial", shards: 1, clients: clients, workers: 1, pool: pool}, serialPairs},
		{scenario{name: "locksrv/v2/pipelined/contended/shards=1", proto: "v2", mode: "pipelined", shards: 1, clients: clients, workers: inflight, pool: pool}, pipePairs},
		{scenario{name: "locksrv/v2/pipelined/contended/shards=16", proto: "v2", mode: "pipelined", shards: 16, clients: clients, workers: inflight, pool: pool}, pipePairs},
	}

	rep := lsReport{
		Schema:     "granulock-bench-locksrv/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	for _, s := range scenarios {
		if benchFilter != "" && !strings.Contains(s.sc.name, benchFilter) {
			continue
		}
		fmt.Fprintln(os.Stderr, "bench: "+s.sc.name)
		e, err := runScenario(s.sc, s.pairs)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	// Cluster-scaling curve over the fixed-RTT transport (see cluster.go
	// for why the delay is there), plus the routing-overhead baseline.
	clusterPairs := 300
	if quick {
		clusterPairs = 20
	}
	clusterRuns := []struct {
		name  string
		nodes int // 0: direct (non-cluster) baseline
	}{
		{"locksrv/cluster/rtt/direct-v2", 0},
		{"locksrv/cluster/rtt/nodes=1", 1},
		{"locksrv/cluster/rtt/nodes=2", 2},
		{"locksrv/cluster/rtt/nodes=4", 4},
	}
	for _, cr := range clusterRuns {
		if benchFilter != "" && !strings.Contains(cr.name, benchFilter) {
			continue
		}
		fmt.Fprintln(os.Stderr, "bench: "+cr.name)
		var e lsEntry
		var err error
		if cr.nodes == 0 {
			e, err = runDirectDelayScenario(cr.name, clusterPairs)
		} else {
			e, err = runClusterScenario(cr.name, cr.nodes, clusterPairs)
		}
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	micro := []func() lsEntry{
		func() lsEntry { return lockmgrBench("lockmgr/claim-1g/shards=1", 1, 1) },
		func() lsEntry { return lockmgrBench("lockmgr/claim-1g/shards=16", 16, 1) },
		func() lsEntry { return lockmgrBench("lockmgr/claim-8g/shards=16", 16, 8) },
		func() lsEntry { return lockmgrContendedBench("lockmgr/contended/shards=1", 1) },
		func() lsEntry { return lockmgrContendedBench("lockmgr/contended/shards=16", 16) },
	}
	names := []string{
		"lockmgr/claim-1g/shards=1", "lockmgr/claim-1g/shards=16", "lockmgr/claim-8g/shards=16",
		"lockmgr/contended/shards=1", "lockmgr/contended/shards=16",
	}
	for i, f := range micro {
		if benchFilter != "" && !strings.Contains(names[i], benchFilter) {
			continue
		}
		if i == 0 {
			fmt.Fprintln(os.Stderr, "bench: lockmgr microbenchmarks")
		}
		rep.Benchmarks = append(rep.Benchmarks, f())
	}

	comparisons := []struct {
		name, num, den string
		target         float64
	}{
		{"v2-pipelined-sharded vs v1-serial (uncontended headline)",
			"locksrv/v2/pipelined/uncontended/shards=16", "locksrv/v1/serial/uncontended/shards=1", 4},
		{"binary codec alone (v2 serial vs v1 serial)",
			"locksrv/v2/serial/uncontended/shards=1", "locksrv/v1/serial/uncontended/shards=1", 0},
		{"pipelining alone (v2 pipelined vs v2 serial)",
			"locksrv/v2/pipelined/uncontended/shards=1", "locksrv/v2/serial/uncontended/shards=1", 0},
		{"sharding, uncontended (16 vs 1 stripes)",
			"locksrv/v2/pipelined/uncontended/shards=16", "locksrv/v2/pipelined/uncontended/shards=1", 0},
		{"batching vs pipelining",
			"locksrv/v2/batched/uncontended/shards=16", "locksrv/v2/pipelined/uncontended/shards=16", 0},
		{"v2-pipelined-sharded vs v1-serial (contended, honest)",
			"locksrv/v2/pipelined/contended/shards=16", "locksrv/v1/serial/contended/shards=1", 0},
		{"sharding, contended (16 vs 1 stripes)",
			"locksrv/v2/pipelined/contended/shards=16", "locksrv/v2/pipelined/contended/shards=1", 0},
		{"cluster scaling, RTT-bound (2 vs 1 nodes)",
			"locksrv/cluster/rtt/nodes=2", "locksrv/cluster/rtt/nodes=1", 1.8},
		{"cluster scaling, RTT-bound (4 vs 1 nodes)",
			"locksrv/cluster/rtt/nodes=4", "locksrv/cluster/rtt/nodes=1", 0},
		{"cluster routing overhead (1-node cluster vs direct v2)",
			"locksrv/cluster/rtt/nodes=1", "locksrv/cluster/rtt/direct-v2", 0},
	}
	for _, c := range comparisons {
		if benchFilter != "" {
			break
		}
		cmp, err := compare(rep.Benchmarks, c.name, c.num, c.den, c.target)
		if err != nil {
			return nil, err
		}
		rep.Comparisons = append(rep.Comparisons, cmp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')

	for _, e := range rep.Benchmarks {
		fmt.Printf("%-46s %12.1f ns/op %14.0f ops/sec\n", e.Name, e.NsPerOp, e.OpsPerSec)
	}
	for _, c := range rep.Comparisons {
		mark := ""
		if c.Target > 0 {
			if c.Pass {
				mark = fmt.Sprintf("  PASS (target %.3gx)", c.Target)
			} else {
				mark = fmt.Sprintf("  FAIL (target %.3gx)", c.Target)
			}
		}
		fmt.Printf("%-54s %6.2fx%s\n", c.Name, c.Speedup, mark)
	}
	return data, nil
}
