// Command bench regenerates the repository's performance-trajectory
// files: machine-readable throughput and allocation numbers, each
// compared against a recorded baseline. It has two suites:
//
//	go run ./cmd/bench -suite model   -out BENCH_model.json
//	go run ./cmd/bench -suite locksrv -out BENCH_locksrv.json
//	go run ./cmd/bench -suite lockmgr -out BENCH_lockmgr.json
//	go run ./cmd/bench -suite engine  -out BENCH_engine.json
//	go run ./cmd/bench -suite wal     -out BENCH_wal.json
//
// The model suite measures the simulation engine and two representative
// figure sweeps. The locksrv suite measures the network lock service —
// wire protocol v1 vs v2, serial vs pipelined vs batched, lock table
// sharded vs not, plus the partitioned cluster's 1/2/4-node scaling
// curve over a fixed-RTT transport — and lockmgr microbenchmarks (see
// locksrv.go and cluster.go). The
// lockmgr suite measures the in-process lock table with the lock-free
// fast path enabled vs force-disabled (see lockmgr.go). The engine
// suite measures end-to-end transaction throughput of the executable
// engine under every registered concurrency-control protocol (see
// engine.go); -protocol restricts it to one protocol, -protocol list
// prints the registry. The wal suite measures group commit against a
// per-commit-sync baseline over a fixed-latency sync model, plus
// snapshot-bounded vs full-history recovery on real file-backed logs
// (see wal.go).
//
// The -quick flag shortens the workloads for CI smoke runs; -compare
// OLD.json re-reads a previous report and exits nonzero if any
// benchmark's throughput regressed by more than 10%. When the two
// reports disagree on the quick flag (a CI smoke run diffed against a
// checked-in full run from a different machine), absolute throughput
// is not comparable; the diff falls back to the reports' recorded
// speedup ratios, which are machine-independent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"testing"
	"time"

	"granulock/internal/experiments"
	"granulock/internal/sim"
)

// baseline holds the pre-change numbers a benchmark is compared against.
type baseline struct {
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// entry is one benchmark's record in BENCH_model.json.
type entry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	EventsPerOp  float64 `json:"events_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`

	// Baseline is the same benchmark measured on the pre-optimization
	// engine (commit 193eeab, interface-heap + per-event allocation),
	// kept in-file so every future report carries its own yardstick.
	Baseline *baseline `json:"baseline,omitempty"`
	// SpeedupEventsPerSec is events_per_sec / baseline events_per_sec.
	SpeedupEventsPerSec float64 `json:"speedup_events_per_sec,omitempty"`
	// AllocsReduction is 1 - allocs_per_op / baseline allocs_per_op.
	AllocsReduction float64 `json:"allocs_reduction,omitempty"`
}

// report is the top-level BENCH_model.json document.
type report struct {
	Schema     string  `json:"schema"`
	Generated  string  `json:"generated"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Quick      bool    `json:"quick"`
	Benchmarks []entry `json:"benchmarks"`
}

// Pre-optimization numbers, measured on this machine class at the seed
// commit with the identical benchmark bodies (see DESIGN.md §1).
var baselines = map[string]baseline{
	"sim.Engine/churn":        {NsPerOp: 233.4, BytesPerOp: 32, AllocsPerOp: 1},
	"sim.Engine/cancel-churn": {NsPerOp: 375.7, BytesPerOp: 64, AllocsPerOp: 2},
	"experiments/fig2":        {NsPerOp: 306427550, BytesPerOp: 93573408, AllocsPerOp: 3171690},
	"experiments/fig9":        {NsPerOp: 436971176, BytesPerOp: 188574224, AllocsPerOp: 6478481},
}

// churnDelay mirrors the deterministic LCG of the in-package benchmark.
type churnDelay uint64

func (c *churnDelay) next() float64 {
	*c = *c*6364136223846793005 + 1442695040888963407
	return float64(uint64(*c)>>40)/float64(1<<24) + 1e-9
}

// engineChurn is the raw event-loop benchmark: a standing population
// where every fired event schedules one replacement — one schedule plus
// one dispatch per iteration.
func engineChurn(b *testing.B) {
	var e sim.Engine
	var rng churnDelay = 1
	var fn func()
	fn = func() { e.After(rng.next(), fn) }
	for i := 0; i < 1024; i++ {
		e.At(rng.next(), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// engineCancelChurn exercises the cancel path: two schedules, one
// cancel, one dispatch per iteration.
func engineCancelChurn(b *testing.B) {
	var e sim.Engine
	var rng churnDelay = 1
	nop := func() {}
	for i := 0; i < 512; i++ {
		e.At(rng.next(), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(rng.next(), nop)
		e.Cancel(e.After(rng.next(), nop))
		e.Step()
	}
}

// figureSeed hands every figure-bench iteration a fresh seed so the
// cross-sweep cell cache can never serve a previous iteration's results
// and the measurement stays a measurement of simulation speed.
var figureSeed atomic.Uint64

// figureBench measures one full figure sweep per iteration and returns
// the benchmark result plus the mean number of simulator events behind
// one sweep.
func figureBench(id string, tmax float64) (testing.BenchmarkResult, float64, error) {
	var events, iters uint64
	var failure error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := experiments.Options{TMax: tmax, Seed: figureSeed.Add(1), Replications: 1, Parallelism: runtime.GOMAXPROCS(0)}
			f, err := experiments.Run(id, o)
			if err != nil {
				failure = err
				b.Fatal(err)
			}
			// Panels share their Series slices; panel 0 covers the sweep.
			for _, s := range f.Panels[0].Series {
				for _, pt := range s.Points {
					events += pt.M.Events
				}
			}
			iters++
		}
	})
	if failure != nil {
		return r, 0, failure
	}
	return r, float64(events) / float64(iters), nil
}

// record converts a benchmark result into a report entry, attaching the
// baseline comparison when one is on file. Baseline events/sec is
// derived from the measured events/op: the model is bit-deterministic
// per seed, so the event count behind an operation is identical across
// engine generations and only the wall time differs.
func record(name string, r testing.BenchmarkResult, eventsPerOp float64) entry {
	ns := float64(r.NsPerOp())
	e := entry{
		Name:         name,
		NsPerOp:      ns,
		BytesPerOp:   float64(r.AllocedBytesPerOp()),
		AllocsPerOp:  float64(r.AllocsPerOp()),
		EventsPerOp:  eventsPerOp,
		EventsPerSec: eventsPerOp / ns * 1e9,
	}
	if b, ok := baselines[name]; ok {
		b.EventsPerSec = eventsPerOp / b.NsPerOp * 1e9
		e.Baseline = &b
		e.SpeedupEventsPerSec = e.EventsPerSec / b.EventsPerSec
		if b.AllocsPerOp > 0 {
			e.AllocsReduction = 1 - e.AllocsPerOp/b.AllocsPerOp
		}
	}
	return e
}

func main() {
	suite := flag.String("suite", "model", "benchmark suite: model, locksrv, lockmgr, engine or wal")
	out := flag.String("out", "", "output path (default BENCH_<suite>.json)")
	quick := flag.Bool("quick", false, "shorten workloads for CI smoke runs")
	compare := flag.String("compare", "", "previous report to diff against; exit nonzero on >10% throughput regression")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the suite run")
	only := flag.String("run", "", "only run benchmarks whose name contains this substring (locksrv suite; skips comparisons)")
	protocol := flag.String("protocol", "", "engine suite: run only this concurrency-control protocol; \"list\" prints the registry")
	flag.Parse()
	benchFilter = *only
	if err := resolveProtocolFlag(protocol); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	if *out == "" {
		*out = "BENCH_" + *suite + ".json"
	}

	var data []byte
	var err error
	switch *suite {
	case "model":
		data, err = runModel(*quick)
	case "locksrv":
		data, err = runLocksrv(*quick)
	case "lockmgr":
		data, err = runLockmgr(*quick)
	case "engine":
		data, err = runEngine(*quick, *protocol)
	case "wal":
		data, err = runWAL(*quick)
	default:
		err = fmt.Errorf("unknown suite %q (want model, locksrv, lockmgr, engine or wal)", *suite)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *compare != "" {
		if err := compareReports(data, *compare); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}

// runModel executes the simulation-engine suite and returns the
// marshalled BENCH_model.json document.
func runModel(quick bool) ([]byte, error) {
	tmax := 250.0
	if quick {
		tmax = 100
	}

	rep := report{
		Schema:     "granulock-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}

	fmt.Fprintln(os.Stderr, "bench: sim.Engine/churn")
	rep.Benchmarks = append(rep.Benchmarks, record("sim.Engine/churn", testing.Benchmark(engineChurn), 1))
	fmt.Fprintln(os.Stderr, "bench: sim.Engine/cancel-churn")
	rep.Benchmarks = append(rep.Benchmarks, record("sim.Engine/cancel-churn", testing.Benchmark(engineCancelChurn), 1))
	for _, id := range []string{"fig2", "fig9"} {
		name := "experiments/" + id
		fmt.Fprintln(os.Stderr, "bench: "+name)
		r, eventsPerOp, err := figureBench(id, tmax)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		e := record(name, r, eventsPerOp)
		if quick {
			// Quick figure runs are not comparable to the full-length
			// baseline; keep the measurement, drop the comparison.
			e.Baseline, e.SpeedupEventsPerSec, e.AllocsReduction = nil, 0, 0
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	for _, e := range rep.Benchmarks {
		fmt.Printf("%-26s %12.1f ns/op %10.0f allocs/op %14.0f events/sec", e.Name, e.NsPerOp, e.AllocsPerOp, e.EventsPerSec)
		if e.Baseline != nil {
			fmt.Printf("  (%.2fx events/sec, %.0f%% fewer allocs vs baseline)", e.SpeedupEventsPerSec, e.AllocsReduction*100)
		}
		fmt.Println()
	}
	return data, nil
}

// compBench is the schema-agnostic slice of one benchmark entry the
// -compare mode needs: its name plus whichever throughput metric the
// suite records.
type compBench struct {
	Name         string  `json:"name"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

func (b compBench) throughput() float64 {
	if b.OpsPerSec > 0 {
		return b.OpsPerSec
	}
	return b.EventsPerSec
}

// compComparison is the slice of a recorded comparison the ratio
// fallback needs: the named speedup plus its acceptance floor.
type compComparison struct {
	Name    string  `json:"name"`
	Speedup float64 `json:"speedup"`
	Target  float64 `json:"target"`
	Pass    bool    `json:"pass"`
}

type comparable struct {
	Quick       bool             `json:"quick"`
	Benchmarks  []compBench      `json:"benchmarks"`
	Comparisons []compComparison `json:"comparisons"`
}

// compareReports diffs the fresh report against a previous one and
// fails on any benchmark whose throughput dropped more than 10%.
// Benchmarks present on only one side are reported but never fail the
// run (suites grow).
//
// When the reports disagree on the quick flag — the CI smoke case,
// where a quick run on an arbitrary runner is diffed against the
// checked-in full-fidelity report from another machine — absolute
// throughput is not comparable and the diff uses the reports' recorded
// speedup ratios instead (fast vs slow measured within one process on
// one machine), with the same 10% tolerance. Either way, any recorded
// comparison carrying an acceptance target must pass in the fresh run.
func compareReports(newData []byte, oldPath string) error {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var oldRep, newRep comparable
	if err := json.Unmarshal(oldData, &oldRep); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	if err := json.Unmarshal(newData, &newRep); err != nil {
		return err
	}
	if oldRep.Quick != newRep.Quick && len(oldRep.Comparisons) > 0 {
		fmt.Printf("compare: quick flags differ (old=%v new=%v); comparing speedup ratios, not throughput\n",
			oldRep.Quick, newRep.Quick)
		return compareRatios(oldRep, newRep, oldPath)
	}
	if err := checkTargets(newRep); err != nil {
		return err
	}
	newBy := make(map[string]float64, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newBy[b.Name] = b.throughput()
	}
	const tolerance = 0.10
	var regressed []string
	for _, old := range oldRep.Benchmarks {
		was := old.throughput()
		now, ok := newBy[old.Name]
		if !ok {
			fmt.Printf("compare: %-46s only in %s\n", old.Name, oldPath)
			continue
		}
		if was <= 0 {
			continue
		}
		ratio := now / was
		status := "ok"
		if ratio < 1-tolerance {
			status = "REGRESSED"
			regressed = append(regressed, old.Name)
		}
		fmt.Printf("compare: %-46s %14.0f -> %14.0f  (%.2fx) %s\n", old.Name, was, now, ratio, status)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %v", len(regressed), tolerance*100, regressed)
	}
	return nil
}

// compareRatios diffs the recorded speedup ratios of two reports.
// Ratios divide out the machine: a fast-vs-slow speedup measured on a
// CI runner is directly comparable to the same speedup measured on the
// baseline machine, while their absolute ops/sec are not. The
// tolerance is wider than the throughput diff's because a ratio
// compounds the noise of two measurements; the hard floor is the
// recorded acceptance targets, which checkTargets enforces on the
// fresh run regardless of drift.
func compareRatios(oldRep, newRep comparable, oldPath string) error {
	newBy := make(map[string]compComparison, len(newRep.Comparisons))
	for _, c := range newRep.Comparisons {
		newBy[c.Name] = c
	}
	const tolerance = 0.25
	var regressed []string
	for _, old := range oldRep.Comparisons {
		now, ok := newBy[old.Name]
		if !ok {
			fmt.Printf("compare: %-58s only in %s\n", old.Name, oldPath)
			continue
		}
		if old.Speedup <= 0 {
			continue
		}
		ratio := now.Speedup / old.Speedup
		status := "ok"
		if ratio < 1-tolerance {
			status = "REGRESSED"
			regressed = append(regressed, old.Name)
		}
		fmt.Printf("compare: %-58s %6.2fx -> %6.2fx  (%.2fx) %s\n", old.Name, old.Speedup, now.Speedup, ratio, status)
	}
	if err := checkTargets(newRep); err != nil {
		return err
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d speedup ratio(s) regressed more than %.0f%%: %v", len(regressed), tolerance*100, regressed)
	}
	return nil
}

// checkTargets fails if any comparison in the fresh report missed its
// recorded acceptance floor.
func checkTargets(rep comparable) error {
	var missed []string
	for _, c := range rep.Comparisons {
		if c.Target > 0 && !c.Pass {
			missed = append(missed, fmt.Sprintf("%s: %.2fx < target %.3gx", c.Name, c.Speedup, c.Target))
		}
	}
	if len(missed) > 0 {
		return fmt.Errorf("%d comparison(s) below their acceptance target: %v", len(missed), missed)
	}
	return nil
}
