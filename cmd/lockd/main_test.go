package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/locksrv"
	"granulock/internal/obs"
	"granulock/internal/wal"
)

// startTestService wires the same pieces main does — a metrics
// registry shared by the lock table and the server, and the admin mux
// on an httptest listener — and returns them with a cleanup.
func startTestService(t *testing.T) (*locksrv.Server, *obs.Registry, *httptest.Server) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := locksrv.NewServer(lis, lockmgrTable(reg),
		locksrv.WithGrace(200*time.Millisecond),
		locksrv.WithMetrics(reg),
	)
	go srv.Serve()
	admin := httptest.NewServer(newAdminMux(reg, srv))
	t.Cleanup(func() {
		admin.Close()
		srv.Close()
	})
	return srv, reg, admin
}

// scrape fetches url and returns the body.
func scrape(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestAdminEndpointServesMetrics drives net-style traffic through the
// lock service — grants, a forced timeout, a session teardown — then
// scrapes /metrics over HTTP and checks the exposition parses as valid
// Prometheus text with the session, grant and timeout families
// populated.
func TestAdminEndpointServesMetrics(t *testing.T) {
	srv, _, admin := startTestService(t)

	holder, err := locksrv.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	reqs := []lockmgr.Request{{Granule: 1, Mode: lockmgr.ModeExclusive}}
	if err := holder.AcquireAll(1, reqs); err != nil {
		t.Fatal(err)
	}

	// A second session contends on the held granule and times out.
	waiter, err := locksrv.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	err = waiter.AcquireAllTimeout(2, reqs, 30*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("contended acquire: got %v, want timeout", err)
	}
	waiter.Close()
	if err := holder.ReleaseAll(1); err != nil {
		t.Fatal(err)
	}

	body, resp := scrape(t, admin.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	samples, err := obs.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, body)
	}
	value := func(name string) (float64, bool) {
		for _, s := range samples {
			if s.Name == name {
				return s.Value, true
			}
		}
		return 0, false
	}
	if v, ok := value("granulock_locksrv_sessions_opened_total"); !ok || v < 2 {
		t.Fatalf("sessions_opened_total = %v (present %v), want >= 2", v, ok)
	}
	if v, ok := value("granulock_locksrv_grants_total"); !ok || v < 1 {
		t.Fatalf("grants_total = %v (present %v), want >= 1", v, ok)
	}
	if v, ok := value("granulock_locksrv_timeouts_total"); !ok || v < 1 {
		t.Fatalf("timeouts_total = %v (present %v), want >= 1", v, ok)
	}
	if v, ok := value("granulock_lockmgr_grants_total"); !ok || v < 1 {
		t.Fatalf("lockmgr grants_total = %v (present %v), want >= 1", v, ok)
	}
	// The acquire-wait histogram must have recorded both outcomes.
	var histCount float64
	for _, s := range samples {
		if s.Name == "granulock_locksrv_acquire_wait_ms_count" {
			histCount = s.Value
		}
	}
	if histCount < 2 {
		t.Fatalf("acquire_wait_ms_count = %v, want >= 2", histCount)
	}
}

// TestAdminHealthzAndPprof checks the liveness probe (including its
// draining flip) and that the pprof index responds.
func TestAdminHealthzAndPprof(t *testing.T) {
	srv, _, admin := startTestService(t)

	body, resp := scrape(t, admin.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" || health.Draining {
		t.Fatalf("healthz before drain: %+v", health)
	}

	pprofBody, resp := scrape(t, admin.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
	if !strings.Contains(pprofBody, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", pprofBody)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	body, _ = scrape(t, admin.URL+"/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining || health.Status != "draining" {
		t.Fatalf("healthz after drain: %+v", health)
	}
}

func TestJournalReplayAndTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grants.log")

	// Fresh epoch: nothing to replay.
	j, sum, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 0 || sum.OutstandingTxns != 0 {
		t.Fatalf("fresh journal summary %+v", sum)
	}
	// Two grants, one release — txn 6 is still holding at the "crash".
	if err := j.Grant(5, []lockmgr.Request{
		{Granule: 1, Mode: lockmgr.ModeExclusive},
		{Granule: 2, Mode: lockmgr.ModeShared},
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Grant(6, []lockmgr.Request{{Granule: 3, Mode: lockmgr.ModeExclusive}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Release(5); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay reports txn 6 outstanding, then truncates.
	j2, sum, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 4 || sum.GrantedGranules != 3 || sum.Releases != 1 {
		t.Fatalf("replay summary %+v", sum)
	}
	if sum.OutstandingTxns != 1 || sum.OutstandingGranules != 1 {
		t.Fatalf("outstanding %+v, want txn 6 with 1 granule", sum)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal was truncated: a third open replays nothing.
	j3, sum, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if sum.Records != 0 {
		t.Fatalf("post-truncate summary %+v", sum)
	}
}

func TestJournalReplayTornTail(t *testing.T) {
	// A torn final grant (the crash ate the acknowledgement) must end
	// the replay cleanly, not fail it.
	path := filepath.Join(t.TempDir(), "grants.log")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Grant(1, []lockmgr.Request{{Granule: 7, Mode: lockmgr.ModeExclusive}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: cut the file 10 bytes into the only record.
	if err := os.Truncate(path, int64(wal.LogHeaderSize+10)); err != nil {
		t.Fatal(err)
	}
	_, sum, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Torn || sum.Records != 0 {
		t.Fatalf("torn replay summary %+v", sum)
	}
}
