package main

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"granulock/internal/locksrv"
	"granulock/internal/obs"
)

// newAdminMux builds the admin endpoint served by -admin: /metrics in
// Prometheus text format, /healthz as a JSON liveness/readiness probe
// (status flips to "draining" the moment shutdown begins), and the
// standard runtime profiles under /debug/pprof/. The mux is built on a
// fresh ServeMux rather than http.DefaultServeMux so importing
// net/http/pprof elsewhere can never silently expose profiles on the
// lock service's wire port.
func newAdminMux(reg *obs.Registry, srv *locksrv.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		st := srv.Stats()
		draining := srv.Draining()
		status := "ok"
		if draining {
			status = "draining"
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":   status,
			"draining": draining,
			"sessions": st.Sessions,
			"holders":  st.Holders,
			"waiters":  st.Waiters,
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
