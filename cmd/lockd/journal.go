package main

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"granulock/internal/lockmgr"
	"granulock/internal/locksrv"
	"granulock/internal/wal"
)

// walJournal is lockd's grant journal (-waldir): a file-backed
// group-commit log recording every grant before its acknowledgement and
// every release after it. Concurrent grants coalesce into one fsync via
// the log's flusher, so journaling costs one flush per batch, not one
// per grant.
//
// Record encoding reuses the WAL's fixed layout: a grant is one update
// record per granule (Txn = transaction, Entity = granule, After = 1
// shared / 2 exclusive); a release is a single commit record for the
// transaction. Replay folds the records into the set of transactions
// still holding locks when the previous process died.
type walJournal struct {
	log *wal.Log
}

var _ locksrv.Journal = (*walJournal)(nil)

func (j *walJournal) Grant(txn lockmgr.TxnID, reqs []lockmgr.Request) error {
	recs := make([]wal.Record, len(reqs))
	for i, r := range reqs {
		mode := int64(1)
		if r.Mode == lockmgr.ModeExclusive {
			mode = 2
		}
		recs[i] = wal.Record{Kind: wal.KindUpdate, Txn: int64(txn), Entity: int64(r.Granule), After: mode}
	}
	return j.log.Commit(recs)
}

func (j *walJournal) Release(txn lockmgr.TxnID) error {
	return j.log.Commit([]wal.Record{{Kind: wal.KindCommit, Txn: int64(txn)}})
}

func (j *walJournal) Close() error { return j.log.Close() }

// journalSummary is what replaying the previous epoch's journal found.
type journalSummary struct {
	Records             int
	GrantedGranules     int
	Releases            int
	OutstandingTxns     int
	OutstandingGranules int
	Torn                bool
}

// replayJournal scans a journal file into a summary. A missing file is
// an empty summary; a torn tail ends the scan (the tear is a grant that
// was never acknowledged).
func replayJournal(path string) (journalSummary, error) {
	var sum journalSummary
	r, _, closer, err := wal.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return sum, nil
	}
	if err != nil {
		return sum, err
	}
	defer closer.Close()
	outstanding := map[int64]int{}
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, wal.ErrCorrupt) {
			sum.Torn = true
			break
		}
		if err != nil {
			return sum, err
		}
		sum.Records++
		switch rec.Kind {
		case wal.KindUpdate:
			sum.GrantedGranules++
			outstanding[rec.Txn]++
		case wal.KindCommit:
			sum.Releases++
			delete(outstanding, rec.Txn)
		}
	}
	sum.OutstandingTxns = len(outstanding)
	for _, n := range outstanding {
		sum.OutstandingGranules += n
	}
	return sum, nil
}

// openJournal replays the previous epoch's journal at path, then
// truncates it and opens a fresh one. The sessions that held the
// outstanding grants died with the previous process, so replay reports
// them — it never re-grants to ghosts.
func openJournal(path string) (*walJournal, journalSummary, error) {
	sum, err := replayJournal(path)
	if err != nil {
		return nil, sum, fmt.Errorf("journal replay: %w", err)
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, sum, err
	}
	log, err := wal.OpenFile(path)
	if err != nil {
		return nil, sum, err
	}
	return &walJournal{log: log}, sum, nil
}
