// Command lockd runs the network lock manager: a central granule lock
// service for shared-nothing workers in separate processes.
//
// Usage:
//
//	lockd [-addr 127.0.0.1:7654] [-grace 5s] [-idle 5m] [-stats 30s] [-admin 127.0.0.1:9654]
//
// The protocol is newline-delimited JSON (see internal/locksrv and
// docs/LOCKSRV.md):
//
//	{"op":"acquire","txn":1,"granules":[3,4],"exclusive":[true,false],"timeout_ms":500}
//	{"op":"release","txn":1}
//	{"op":"stats"}
//
// SIGTERM or SIGINT drains gracefully: lockd stops accepting, gives
// in-flight requests the -grace period to finish, force-releases
// whatever remains, and exits. Sessions idle longer than -idle are
// reaped (their locks released) as if they had disconnected. Every
// -stats interval lockd logs session/waiter gauges, acquire outcome
// counters and wait-time quantiles.
//
// -admin starts an HTTP admin listener on a separate address serving
// /metrics (Prometheus text format), /healthz (JSON liveness probe,
// flips to "draining" during shutdown) and /debug/pprof/. Empty (the
// default) disables it.
//
// -waldir enables the durable grant journal: every grant is made
// durable in a group-commit write-ahead log before it is acknowledged,
// and every release (explicit or forced) is journaled after it. On
// restart lockd replays the previous journal, reports which
// transactions were still holding locks when the process died (their
// sessions are gone, so nothing is re-granted), and starts a fresh
// journal epoch.
//
// -cluster runs the node as one member of a consistent-hash
// partitioned cluster: a comma-separated ordered list of every
// member's address (identical on all members), with -clusterself
// giving this node's index in that list. The node serves only the
// granules its ring partition owns, redirects the rest, heartbeats
// its predecessor and adopts the predecessor's partition through a
// lease-recovery window when it dies (see docs/LOCKSRV.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/locksrv"
	"granulock/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "listen address")
	grace := flag.Duration("grace", 5*time.Second, "drain grace period for in-flight requests on shutdown")
	idle := flag.Duration("idle", 5*time.Minute, "reap sessions idle longer than this (0 disables)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats logging interval (0 disables)")
	adminAddr := flag.String("admin", "", "HTTP admin listen address for /metrics, /healthz and /debug/pprof/ (empty disables)")
	cluster := flag.String("cluster", "", "comma-separated ordered addresses of every cluster member (empty: standalone)")
	clusterSelf := flag.Int("clusterself", 0, "this node's index in the -cluster list")
	hbEvery := flag.Duration("heartbeat", 250*time.Millisecond, "cluster predecessor heartbeat interval")
	recoveryGrace := flag.Duration("recovery", 2*time.Second, "cluster lease-recovery window after adopting a dead node's partition")
	walDir := flag.String("waldir", "", "directory for the durable grant journal (empty disables); on restart the previous journal is replayed for a summary, then truncated")
	flag.Parse()

	logger := log.New(os.Stderr, "lockd: ", log.LstdFlags|log.Lmicroseconds)
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	reg := obs.NewRegistry()
	table := lockmgrTable(reg)
	opts := []locksrv.ServerOption{
		locksrv.WithGrace(*grace),
		locksrv.WithIdleTimeout(*idle),
		locksrv.WithMetrics(reg),
	}
	var journal *walJournal
	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			logger.Fatal(err)
		}
		path := filepath.Join(*walDir, "grants.log")
		j, sum, err := openJournal(path)
		if err != nil {
			logger.Fatal(err)
		}
		journal = j
		if sum.OutstandingTxns > 0 {
			logger.Printf("journal: %d transactions held %d granules when the previous process died; their sessions are gone, locks not re-granted",
				sum.OutstandingTxns, sum.OutstandingGranules)
		}
		logger.Printf("journal: replayed %d records (%d granule grants, %d releases, torn=%v); fresh epoch at %s",
			sum.Records, sum.GrantedGranules, sum.Releases, sum.Torn, path)
		opts = append(opts, locksrv.WithJournal(journal))
	}
	if *cluster != "" {
		nodes := strings.Split(*cluster, ",")
		if *clusterSelf < 0 || *clusterSelf >= len(nodes) {
			logger.Fatalf("-clusterself %d out of range for %d cluster nodes", *clusterSelf, len(nodes))
		}
		opts = append(opts, locksrv.WithCluster(locksrv.ClusterConfig{
			Nodes:          nodes,
			Self:           *clusterSelf,
			HeartbeatEvery: *hbEvery,
			RecoveryGrace:  *recoveryGrace,
		}))
		logger.Printf("cluster node %d of %d", *clusterSelf, len(nodes))
	}
	srv := locksrv.NewServer(lis, table, opts...)
	fmt.Println("lockd listening on", srv.Addr())

	var admin *http.Server
	if *adminAddr != "" {
		alis, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			logger.Fatal(err)
		}
		admin = &http.Server{Handler: newAdminMux(reg, srv)}
		fmt.Println("lockd admin on", alis.Addr())
		go func() {
			if err := admin.Serve(alis); err != nil && err != http.ErrServerClosed {
				logger.Printf("admin: %v", err)
			}
		}()
	}

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					logStats(logger, srv.Stats())
				case <-stop:
					return
				}
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigs
		logger.Printf("received %v, draining (grace %v)", sig, *grace)
		if err := srv.Close(); err != nil {
			logger.Printf("drain: %v", err)
		}
	}()

	if err := srv.Serve(); err != nil {
		logger.Fatal(err)
	}
	close(stop)
	if admin != nil {
		admin.Close()
	}
	logStats(logger, srv.Stats())
	if journal != nil {
		if err := journal.Close(); err != nil {
			logger.Printf("journal close: %v", err)
		}
	}
	logger.Printf("drained; exiting")
}

// lockmgrTable builds the served lock table with its granulock_lockmgr_
// families registered alongside the service's granulock_locksrv_ ones,
// so one /metrics scrape covers both layers.
func lockmgrTable(reg *obs.Registry) *lockmgr.Table {
	return lockmgr.NewTable(lockmgr.WithMetrics(reg))
}

// logStats renders one stats line in key=value form.
func logStats(logger *log.Logger, st locksrv.ServerStats) {
	logger.Printf("sessions=%d/%d holders=%d granules=%d waiters=%d grants=%d timeouts=%d cancels=%d force_releases=%d foreign_releases=%d idle_reaps=%d wait_ms_p50=%.2f p90=%.2f p99=%.2f samples=%d",
		st.Sessions, st.SessionsTotal, st.Holders, st.LockedGranules, st.Waiters,
		st.Grants, st.Timeouts, st.Cancels, st.ForceReleases, st.ForeignReleases,
		st.IdleReaps, st.WaitP50MS, st.WaitP90MS, st.WaitP99MS, st.WaitSamples)
	if c := st.Cluster; c != nil {
		logger.Printf("cluster takeovers=%d reasserts=%d lease_expired=%d redirects=%d parked=%d",
			c.Takeovers, c.Reasserts, c.LeaseExpired, c.Redirects, c.ParkedAcquires)
	}
}
