// Command lockd runs the network lock manager: a central granule lock
// service for shared-nothing workers in separate processes.
//
// Usage:
//
//	lockd [-addr 127.0.0.1:7654]
//
// The protocol is newline-delimited JSON (see internal/locksrv):
//
//	{"op":"acquire","txn":1,"granules":[3,4],"exclusive":[true,false]}
//	{"op":"release","txn":1}
//	{"op":"stats"}
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"granulock/internal/locksrv"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7654", "listen address")
	flag.Parse()
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockd:", err)
		os.Exit(1)
	}
	srv := locksrv.NewServer(lis, nil)
	fmt.Println("lockd listening on", srv.Addr())
	if err := srv.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "lockd:", err)
		os.Exit(1)
	}
}
