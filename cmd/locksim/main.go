// Command locksim runs a single configuration of the locking-granularity
// simulation model and prints its output parameters.
//
// Usage:
//
//	locksim [flags]
//
// Example (the paper's base configuration on 30 processors):
//
//	locksim -npros 30 -ltot 100 -tmax 1000
//	locksim -npros 10 -ltot 5000 -placement worst -json
//	locksim -reps 5 -npros 20        # replicated with 95% CIs
//
// With -net N the command instead drives N worker sessions through the
// network lock service (internal/locksrv) on an in-process server —
// optionally through a fault-injecting transport — and verifies that a
// graceful drain strands no granules:
//
//	locksim -net 8 -nettxns 1000 -netfaults -ltot 100
//	locksim -net 8 -netproto v2 -netfaults -ltot 100   # binary pipelined protocol
//
// With -cluster N (N ≥ 2, alongside -net) the harness instead stands
// up an N-node partitioned lock cluster and drives cluster-aware
// clients through it; -netkill (default true) kills one node a third
// of the way through the run, forcing a heartbeat-detected takeover
// and lease re-assertion under live traffic:
//
//	locksim -net 8 -cluster 3 -nettxns 1000 -ltot 100
//	locksim -net 8 -cluster 3 -netfaults -netkill=false -ltot 100
//
// With -engine the command instead runs one closed workload on the
// executable engine (internal/engine) under a chosen concurrency-
// control protocol, printing throughput, restart and lock statistics
// and checking the balance invariant. -protocol names a protocol from
// the cc registry; -protocol list prints the registered names:
//
//	locksim -engine -protocol wound-wait -ltot 100 -ntrans 8
//	locksim -engine -protocol optimistic -dbsize 1000 -ltot 50 -json
//	locksim -protocol list
//
// With -crash N the command runs N kill-and-recover cycles of the
// durable engine (engine.OpenDurable) against one write-ahead-log
// directory: each cycle crashes at a random injected point — mid
// record, mid group flush, or mid snapshot install — then reopens the
// directory and verifies the recovered state conserves the total
// balance. -npros is the partition-log count, -ltot the granule count:
//
//	locksim -crash 6 -dbsize 400 -ltot 40 -npros 4
//	locksim -crash 10 -protocol optimistic -crashtxns 40 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"granulock"
	tracepkg "granulock/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "locksim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("locksim", flag.ContinueOnError)
	p := granulock.DefaultParams()

	fs.IntVar(&p.DBSize, "dbsize", p.DBSize, "accessible entities in the database")
	fs.IntVar(&p.Ltot, "ltot", p.Ltot, "number of locks (granules)")
	fs.IntVar(&p.NTrans, "ntrans", p.NTrans, "transactions in the closed system")
	fs.IntVar(&p.MaxTransize, "maxtransize", p.MaxTransize, "maximum transaction size")
	fs.Float64Var(&p.CPUTime, "cputime", p.CPUTime, "CPU time units per entity")
	fs.Float64Var(&p.IOTime, "iotime", p.IOTime, "I/O time units per entity")
	fs.Float64Var(&p.LockCPUTime, "lcputime", p.LockCPUTime, "CPU time units per lock")
	fs.Float64Var(&p.LockIOTime, "liotime", p.LockIOTime, "I/O time units per lock")
	fs.IntVar(&p.NPros, "npros", p.NPros, "number of processors")
	fs.Float64Var(&p.TMax, "tmax", p.TMax, "simulated time units")
	seed := fs.Uint64("seed", 1, "random seed")
	placement := fs.String("placement", "best", "granule placement: best, worst or random")
	partitioning := fs.String("partitioning", "horizontal", "data partitioning: horizontal or random")
	mix := fs.Bool("mix", false, "use the 80% small / 20% large workload mix of §3.6")
	mpl := fs.Int("mpl", 0, "fixed MPL admission limit (0 = unlimited)")
	reps := fs.Int("reps", 1, "independent replications (report 95% CIs when > 1)")
	asJSON := fs.Bool("json", false, "emit JSON instead of text")
	predict := fs.Bool("analytic", false, "also print the analytic (MVA) prediction")
	trace := fs.Int("trace", 0, "print the first N transaction lifecycle events")
	traceFile := fs.String("tracefile", "", "write the full event trace as JSON lines to this file")
	quantiles := fs.Bool("quantiles", false, "also print response-time P50/P90/P99")
	netWorkers := fs.Int("net", 0, "run the network lock-service harness with this many worker sessions instead of the simulation")
	netTxns := fs.Int("nettxns", 1000, "transactions to run across the -net workers")
	netLocksPer := fs.Int("netlocksper", 4, "maximum granules claimed per -net transaction")
	netTimeout := fs.Duration("nettimeout", 200*time.Millisecond, "per-acquire wait deadline for -net transactions")
	netFaults := fs.Bool("netfaults", false, "inject transport faults (drops, delays, partial writes) into the -net clients")
	netProto := fs.String("netproto", "v1", "wire protocol for the -net clients: v1 (JSON) or v2 (binary pipelined)")
	clusterNodes := fs.Int("cluster", 0, "run the -net harness against a partitioned cluster with this many nodes (0: single server)")
	netKill := fs.Bool("netkill", true, "kill one cluster node a third of the way through a -cluster run")
	engineMode := fs.Bool("engine", false, "run the executable engine (one closed workload) instead of the simulation; -ltot is the granule count, -ntrans the workers, -npros the nodes")
	protocol := fs.String("protocol", "", "engine concurrency-control protocol (with -engine); \"list\" prints the registry")
	engTxns := fs.Int("engtxns", 200, "transactions per worker for the -engine workload")
	crashCycles := fs.Int("crash", 0, "run this many durable-engine kill-and-recover cycles instead of the simulation")
	crashTxns := fs.Int("crashtxns", 30, "transfers per worker per -crash cycle")
	crashDir := fs.String("crashdir", "", "WAL directory for -crash (empty: fresh temp dir, removed afterwards)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateProtocol(*protocol); err != nil {
		return err
	}

	if *crashCycles > 0 {
		return runCrashMode(crashConfig{
			dbsize:   p.DBSize,
			granules: p.Ltot,
			nodes:    p.NPros,
			workers:  4,
			cycles:   *crashCycles,
			txns:     *crashTxns,
			protocol: *protocol,
			dir:      *crashDir,
			seed:     *seed,
			asJSON:   *asJSON,
		}, out)
	}

	if *engineMode {
		return runEngineMode(engineConfig{
			dbsize:   p.DBSize,
			granules: p.Ltot,
			nodes:    p.NPros,
			workers:  p.NTrans,
			txns:     *engTxns,
			protocol: *protocol,
			seed:     *seed,
			asJSON:   *asJSON,
		}, out)
	}

	if *netWorkers > 0 {
		cfg := netConfig{
			workers:  *netWorkers,
			txns:     *netTxns,
			ltot:     p.Ltot,
			locksPer: *netLocksPer,
			timeout:  *netTimeout,
			faults:   *netFaults,
			proto:    *netProto,
			seed:     *seed,
			asJSON:   *asJSON,
		}
		if *clusterNodes > 0 {
			return runNetCluster(clusterNetConfig{
				netConfig: cfg,
				nodes:     *clusterNodes,
				kill:      *netKill,
			}, out)
		}
		if *netProto != "v1" && *netProto != "v2" {
			return fmt.Errorf("unknown -netproto %q (v1, v2)", *netProto)
		}
		return runNet(cfg, out)
	}

	p.Seed = *seed
	var err error
	if p.Placement, err = parsePlacement(*placement); err != nil {
		return err
	}
	if p.Partitioning, err = parsePartitioning(*partitioning); err != nil {
		return err
	}
	if *mix {
		p.Classes = granulock.SmallLargeMix(50, 500, 0.8)
	}
	if *mpl > 0 {
		p.Scheduler = granulock.FixedMPL(*mpl)
	}

	if *reps > 1 {
		r, err := granulock.RunReplicated(p, *reps)
		if err != nil {
			return err
		}
		if *asJSON {
			return json.NewEncoder(out).Encode(r)
		}
		fmt.Fprintf(out, "replications     %d\n", r.Throughput.N)
		fmt.Fprintf(out, "throughput       %.4f ± %.4f\n", r.Throughput.Mean, r.Throughput.CI95)
		fmt.Fprintf(out, "response time    %.2f ± %.2f\n", r.MeanResponse.Mean, r.MeanResponse.CI95)
		fmt.Fprintf(out, "useful CPU       %.2f ± %.2f\n", r.UsefulCPU.Mean, r.UsefulCPU.CI95)
		fmt.Fprintf(out, "useful I/O       %.2f ± %.2f\n", r.UsefulIO.Mean, r.UsefulIO.CI95)
		fmt.Fprintf(out, "lock overhead    %.2f ± %.2f\n", r.LockOverhead.Mean, r.LockOverhead.CI95)
		return nil
	}

	var m granulock.Metrics
	var err2 error
	switch {
	case *quantiles:
		var rc granulock.ResponseCollector
		m, err2 = granulock.RunWithObserver(p, &rc)
		if err2 == nil {
			fmt.Fprintf(out, "response P50     %.2f\n", granulock.Quantile(rc.Responses, 0.50))
			fmt.Fprintf(out, "response P90     %.2f\n", granulock.Quantile(rc.Responses, 0.90))
			fmt.Fprintf(out, "response P99     %.2f\n", granulock.Quantile(rc.Responses, 0.99))
		}
	case *traceFile != "":
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		tw := tracepkg.NewWriter(f)
		m, err2 = granulock.RunWithObserver(p, tw)
		if cerr := tw.Close(); err2 == nil {
			err2 = cerr
		}
		if cerr := f.Close(); err2 == nil {
			err2 = cerr
		}
		if err2 == nil {
			fmt.Fprintf(out, "trace: %d events written to %s\n", tw.Events(), *traceFile)
		}
	case *trace > 0:
		tracer := &eventTracer{out: out, limit: *trace}
		m, err2 = granulock.RunWithObserver(p, tracer)
	default:
		m, err2 = granulock.Run(p)
	}
	if err2 != nil {
		return err2
	}
	if *asJSON {
		return json.NewEncoder(out).Encode(m)
	}
	if *predict {
		pred, err := granulock.Predict(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "analytic thr.    %.4f (no-contention %.4f, block prob %.3f)\n",
			pred.Throughput, pred.NoContention, pred.BlockProbability)
	}
	fmt.Fprintf(out, "totcpus          %.2f\n", m.TotCPUs)
	fmt.Fprintf(out, "totios           %.2f\n", m.TotIOs)
	fmt.Fprintf(out, "lockcpus         %.2f\n", m.LockCPUs)
	fmt.Fprintf(out, "lockios          %.2f\n", m.LockIOs)
	fmt.Fprintf(out, "usefulcpus       %.2f\n", m.UsefulCPUs)
	fmt.Fprintf(out, "usefulios        %.2f\n", m.UsefulIOs)
	fmt.Fprintf(out, "totcom           %d\n", m.TotCom)
	fmt.Fprintf(out, "throughput       %.4f\n", m.Throughput)
	fmt.Fprintf(out, "response time    %.2f\n", m.MeanResponse)
	fmt.Fprintf(out, "lock requests    %d (denied %d, rate %.3f)\n", m.LockRequests, m.LockDenials, m.DenialRate)
	fmt.Fprintf(out, "mean active txns %.2f\n", m.MeanActive)
	return nil
}

// eventTracer prints the first limit lifecycle events, one per line.
type eventTracer struct {
	out   *os.File
	limit int
	seen  int
}

func (t *eventTracer) emit(format string, args ...any) {
	if t.seen >= t.limit {
		return
	}
	t.seen++
	fmt.Fprintf(t.out, format, args...)
}

func (t *eventTracer) TxnArrived(id, entities, locks int, at float64) {
	t.emit("%10.3f  txn %-5d arrived (entities=%d, locks=%d)\n", at, id, entities, locks)
}

func (t *eventTracer) LockRequested(id int, at float64) {
	t.emit("%10.3f  txn %-5d lock request\n", at, id)
}

func (t *eventTracer) LockGranted(id int, at float64) {
	t.emit("%10.3f  txn %-5d granted\n", at, id)
}

func (t *eventTracer) LockDenied(id, blockerID int, at float64) {
	t.emit("%10.3f  txn %-5d denied, blocked by txn %d\n", at, id, blockerID)
}

func (t *eventTracer) TxnCompleted(id int, response, at float64) {
	t.emit("%10.3f  txn %-5d completed (response %.3f)\n", at, id, response)
}

func parsePlacement(s string) (granulock.Placement, error) {
	switch s {
	case "best":
		return granulock.PlacementBest, nil
	case "worst":
		return granulock.PlacementWorst, nil
	case "random":
		return granulock.PlacementRandom, nil
	}
	return 0, fmt.Errorf("unknown placement %q (best, worst, random)", s)
}

func parsePartitioning(s string) (granulock.Strategy, error) {
	switch s {
	case "horizontal":
		return granulock.Horizontal, nil
	case "random":
		return granulock.RandomPart, nil
	}
	return 0, fmt.Errorf("unknown partitioning %q (horizontal, random)", s)
}
