package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"granulock/internal/engine"
	"granulock/internal/wal"
)

// crashConfig is the -crash run mode: repeated kill-and-recover cycles
// of the durable engine. Each cycle opens the same WAL directory with a
// fault injector holding a random byte budget — the in-process power
// cut: once the budget is spent every log write tears and every sync
// fails, so all partition logs and any in-flight snapshot die at the
// same moment. Some cycles additionally arm a checkpoint failpoint so
// the kill lands between snapshot-install stages. After every cycle the
// directory is reopened without the injector and the bank-transfer
// invariant is checked: the recovered total balance must equal the
// initial total, whatever the crash tore.
type crashConfig struct {
	dbsize   int
	granules int
	nodes    int
	workers  int
	cycles   int
	txns     int // transfers per worker per cycle
	protocol string
	dir      string // WAL directory; empty runs in a fresh temp dir
	seed     uint64
	asJSON   bool
}

// crashResult is the -crash -json document.
type crashResult struct {
	Cycles          int    `json:"cycles"`
	Crashes         int    `json:"crashes"`
	OpenCrashes     int    `json:"open_crashes"`
	FailpointKills  int    `json:"failpoint_kills"`
	Checkpoints     int    `json:"checkpoints"`
	AckedCommits    int64  `json:"acked_commits"`
	ReplayedCommits int64  `json:"replayed_commits"`
	CrossPartial    int64  `json:"cross_partial"`
	OrderViolations int64  `json:"order_violations"`
	Protocol        string `json:"protocol"`
	Consistent      bool   `json:"consistent"`
}

// splitmix steps a SplitMix64 state, returning the next output. Cheap,
// deterministic, no global rand contention — the same generator the
// engine uses for backoff jitter.
func splitmix(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// powerCut builds the shared fault injector: writes drain a byte
// budget, the write that crosses zero is torn (its first in-budget
// bytes still land), and everything after fails — including syncs.
func powerCut(budget int64) wal.FaultInjector {
	var left atomic.Int64
	left.Store(budget)
	return func(op string, n int) (int, error) {
		if op == "sync" {
			if left.Load() <= 0 {
				return 0, errors.New("power lost")
			}
			return 0, nil
		}
		got := left.Add(int64(-n))
		if got < 0 {
			allow := got + int64(n)
			if allow < 0 {
				allow = 0
			}
			return int(allow), errors.New("power lost")
		}
		return n, nil
	}
}

// installStages are the checkpoint failpoint stages a cycle may be
// killed at (see wal.Dir.SetFailpoint); truncate-0 exists for any
// partition count.
var installStages = []string{"snapshot-tmp", "snapshot-installed", "truncate-0"}

// cycleOutcome is what one injected cycle reports back.
type cycleOutcome struct {
	acked        int64 // transfers acknowledged before the crash
	crashed      bool  // the injector or failpoint fired
	openCrash    bool  // the crash landed inside OpenDurable itself
	checkpointed bool  // the mid-cycle checkpoint completed
	failpoint    bool  // the armed failpoint is what killed the cycle
}

// openCrashDB opens the durable engine over dir, optionally behind a
// fault injector.
func openCrashDB(dir string, cfg crashConfig, inject wal.FaultInjector) (*engine.DB, wal.SetRecoverStats, error) {
	walOpts := []wal.LogOption{wal.WithPreallocate(0)}
	if inject != nil {
		walOpts = append(walOpts, wal.WithFaultInjector(inject))
	}
	return engine.OpenDurable(dir, cfg.dbsize,
		engine.WithNodes(cfg.nodes),
		engine.WithGranules(cfg.granules),
		engine.WithProtocol(cfg.protocol),
		engine.WithInitialValue(100),
		engine.WithWALOptions(walOpts...))
}

// crashCycle runs one injected traffic cycle: workers stream transfers,
// a checkpoint fires halfway, and the first error anywhere is the
// crash — the cycle stops using the engine and closes it, exactly as a
// killed process would.
func crashCycle(dir string, cfg crashConfig, budget int64, failStage string, seed uint64) cycleOutcome {
	var out cycleOutcome
	db, _, err := openCrashDB(dir, cfg, powerCut(budget))
	if err != nil {
		out.crashed, out.openCrash = true, true
		return out
	}
	defer db.Close() // a poisoned close only reports the poison; ignore
	if failStage != "" {
		db.WALDir().SetFailpoint(func(stage string) error {
			if stage == failStage {
				out.failpoint = true
				return fmt.Errorf("failpoint: killed at %s", stage)
			}
			return nil
		})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var acked atomic.Int64
	var crashed atomic.Bool
	runHalf := func(half int) {
		var wg sync.WaitGroup
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := seed ^ uint64(w+1)*0x9e3779b97f4a7c15 ^ uint64(half)<<32
				for i := 0; i < cfg.txns/2 && !crashed.Load(); i++ {
					from := int(splitmix(&rng) % uint64(cfg.dbsize))
					to := int(splitmix(&rng) % uint64(cfg.dbsize))
					if from == to {
						to = (to + 1) % cfg.dbsize
					}
					amount := int64(splitmix(&rng)%5 + 1)
					if _, err := db.Execute(ctx, engine.Transfer(from, to, amount)); err != nil {
						crashed.Store(true)
						cancel()
						return
					}
					acked.Add(1)
				}
			}(w)
		}
		wg.Wait()
	}

	runHalf(0)
	if !crashed.Load() {
		if err := db.Checkpoint(ctx); err != nil {
			crashed.Store(true)
		} else {
			out.checkpointed = true
		}
	}
	if !crashed.Load() {
		runHalf(1)
	}
	out.acked = acked.Load()
	out.crashed = crashed.Load()
	if !out.crashed {
		out.failpoint = false // armed but never reached
	}
	return out
}

// runCrashMode drives the -crash harness and prints the result. Any
// cycle whose recovery fails or violates the balance invariant returns
// an error (non-zero exit).
func runCrashMode(cfg crashConfig, out *os.File) error {
	if cfg.protocol == "" {
		cfg.protocol = engine.Conservative
	}
	if cfg.granules > cfg.dbsize {
		cfg.granules = cfg.dbsize
	}
	if cfg.nodes < 1 {
		cfg.nodes = 1
	}
	if cfg.nodes > wal.MaxPartitions {
		return fmt.Errorf("-npros %d exceeds the %d-partition WAL limit", cfg.nodes, wal.MaxPartitions)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	dir := cfg.dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "locksim-crash-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// Budget ceiling: roughly twice one cycle's write volume (records
	// plus one snapshot), so crashes land everywhere — early, mid-
	// traffic, mid-snapshot — and some cycles survive untouched.
	estimate := int64(cfg.workers*cfg.txns)*int64((4+cfg.nodes)*wal.RecordSize) +
		int64(cfg.dbsize)*16 + 4096

	want := int64(cfg.dbsize) * 100
	res := crashResult{Cycles: cfg.cycles, Protocol: cfg.protocol, Consistent: true}
	rng := cfg.seed
	for cycle := 0; cycle < cfg.cycles; cycle++ {
		budget := int64(splitmix(&rng) % uint64(2*estimate))
		failStage := ""
		if splitmix(&rng)%3 == 0 {
			failStage = installStages[splitmix(&rng)%uint64(len(installStages))]
		}
		o := crashCycle(dir, cfg, budget, failStage, splitmix(&rng))
		res.AckedCommits += o.acked
		if o.crashed {
			res.Crashes++
		}
		if o.openCrash {
			res.OpenCrashes++
		}
		if o.failpoint {
			res.FailpointKills++
		}
		if o.checkpointed {
			res.Checkpoints++
		}

		// The recovery proof: reopen without the injector; whatever the
		// crash tore, the recovered state must conserve every transfer.
		db, stats, err := openCrashDB(dir, cfg, nil)
		if err != nil {
			return fmt.Errorf("cycle %d (budget %d): recovery failed: %w", cycle, budget, err)
		}
		res.ReplayedCommits += int64(stats.Committed)
		res.CrossPartial += int64(stats.CrossPartial)
		res.OrderViolations += int64(stats.OrderViolations)
		got := db.TotalBalance()
		db.Close()
		if got != want {
			res.Consistent = false
			return fmt.Errorf("cycle %d (budget %d): recovered balance %d, want %d", cycle, budget, got, want)
		}
	}

	if cfg.asJSON {
		return json.NewEncoder(out).Encode(res)
	}
	fmt.Fprintf(out, "protocol         %s\n", res.Protocol)
	fmt.Fprintf(out, "cycles           %d\n", res.Cycles)
	fmt.Fprintf(out, "crashes          %d (at open %d, failpoint %d)\n", res.Crashes, res.OpenCrashes, res.FailpointKills)
	fmt.Fprintf(out, "checkpoints      %d\n", res.Checkpoints)
	fmt.Fprintf(out, "acked commits    %d\n", res.AckedCommits)
	fmt.Fprintf(out, "replayed commits %d\n", res.ReplayedCommits)
	fmt.Fprintf(out, "cross-partition  partials %d, order violations %d\n", res.CrossPartial, res.OrderViolations)
	fmt.Fprintf(out, "consistent       %v\n", res.Consistent)
	return nil
}
