package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with a temp-file stdout and returns what it wrote.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunDefaultText(t *testing.T) {
	out, err := capture(t, []string{"-tmax", "200"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"throughput", "totcom", "lock requests"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSON(t *testing.T) {
	out, err := capture(t, []string{"-tmax", "150", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"Throughput"`) {
		t.Fatalf("json output missing Throughput: %s", out)
	}
}

func TestRunReplicated(t *testing.T) {
	out, err := capture(t, []string{"-tmax", "150", "-reps", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "±") {
		t.Fatalf("replicated output missing CI: %s", out)
	}
}

func TestRunAnalyticAndQuantiles(t *testing.T) {
	out, err := capture(t, []string{"-tmax", "200", "-analytic", "-quantiles"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "analytic thr.") || !strings.Contains(out, "response P99") {
		t.Fatalf("missing analytic/quantile lines:\n%s", out)
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := capture(t, []string{"-tmax", "100", "-tracefile", path})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "events written") {
		t.Fatalf("no trace confirmation: %s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("trace file empty: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-placement", "bogus"},
		{"-partitioning", "bogus"},
		{"-ltot", "0"},
	} {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunNetFaulty drives the network lock-service harness through the
// fault-injecting transport and requires the drain invariant: zero
// stranded granules. This is the ISSUE 3 acceptance scenario at test
// scale (the full 1000-txn run is exercised by `make verify`).
func TestRunNetFaulty(t *testing.T) {
	out, err := capture(t, []string{"-net", "4", "-nettxns", "200", "-netfaults", "-ltot", "50"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "residual holders 0 (granules 0, waiters 0)") {
		t.Fatalf("missing clean-drain line:\n%s", out)
	}
}

// TestRunNetJSON checks the machine-readable summary.
func TestRunNetJSON(t *testing.T) {
	out, err := capture(t, []string{"-net", "2", "-nettxns", "50", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"residual_holders":0`) {
		t.Fatalf("json output missing residual_holders: %s", out)
	}
}

// TestRunNetValidation rejects nonsense harness parameters.
func TestRunNetValidation(t *testing.T) {
	if _, err := capture(t, []string{"-net", "2", "-netlocksper", "0"}); err == nil {
		t.Error("locksper 0 accepted")
	}
}

func TestRunMixAndMPL(t *testing.T) {
	out, err := capture(t, []string{"-tmax", "200", "-mix", "-mpl", "3"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "totcom") {
		t.Fatalf("output: %s", out)
	}
}

// TestRunCrash runs the durable-engine kill-and-recover harness: every
// cycle must reopen to a balance-conserving state whatever the injected
// power cut tore (this is the ISSUE crash-recovery acceptance scenario
// at test scale; `make verify` runs it bigger and under -race).
func TestRunCrash(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{
		"-crash", "5", "-dbsize", "200", "-ltot", "20", "-npros", "2",
		"-crashtxns", "20", "-crashdir", dir, "-seed", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "consistent       true") {
		t.Fatalf("missing consistency line:\n%s", out)
	}
	// The same directory reopens across cycles, so the log files must
	// exist afterwards.
	if _, err := os.Stat(filepath.Join(dir, "wal-0.log")); err != nil {
		t.Fatalf("wal-0.log missing after crash run: %v", err)
	}
}

// TestRunCrashJSON checks the machine-readable crash summary and that
// mid-snapshot kills actually occur over enough seeds.
func TestRunCrashJSON(t *testing.T) {
	out, err := capture(t, []string{
		"-crash", "4", "-dbsize", "120", "-ltot", "12", "-npros", "3",
		"-crashtxns", "12", "-seed", "7", "-json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"consistent":true`) {
		t.Fatalf("json output missing consistent: %s", out)
	}
}

// TestRunCrashValidation rejects a partition count beyond the WAL's
// 64-partition commit-mask limit.
func TestRunCrashValidation(t *testing.T) {
	if _, err := capture(t, []string{"-crash", "1", "-npros", "65"}); err == nil {
		t.Error("65 partitions accepted")
	}
}
