package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/locksrv"
	"granulock/internal/rng"
	"granulock/internal/stats"
)

// netConfig parameterizes the network lock-service harness (-net).
type netConfig struct {
	workers  int           // concurrent client sessions
	txns     int           // transactions to run across all workers
	ltot     int           // granule space [0, ltot)
	locksPer int           // max granules claimed per transaction
	timeout  time.Duration // per-acquire wait deadline
	faults   bool          // inject drops/delays/partial writes
	proto    string        // wire protocol: "v1" (JSON) or "v2" (binary pipelined)
	seed     uint64
	asJSON   bool
}

// netClient is the client surface the harness needs; both the v1 JSON
// client and the v2 binary client satisfy it.
type netClient interface {
	AcquireAllTimeout(txn int64, reqs []lockmgr.Request, timeout time.Duration) error
	ReleaseAll(txn int64) error
	Reconnects() int64
	Retries() int64
	Close() error
}

// netSummary is what the harness reports.
type netSummary struct {
	Workers     int     `json:"workers"`
	Txns        int     `json:"txns"`
	Proto       string  `json:"proto"`
	Timeouts    int64   `json:"timeouts"`     // acquire timeouts retried by workers
	Reconnects  int64   `json:"reconnects"`   // client transport reconnects
	Retries     int64   `json:"retries"`      // client request retries
	Drops       int64   `json:"fault_drops"`  // injected connection drops
	Delays      int64   `json:"fault_delays"` // injected delays
	AcqP50MS    float64 `json:"acq_p50_ms"`   // client-observed acquire latency
	AcqP90MS    float64 `json:"acq_p90_ms"`
	AcqP99MS    float64 `json:"acq_p99_ms"`
	SrvGrants   int64   `json:"srv_grants"`
	SrvTimeouts int64   `json:"srv_timeouts"`
	SrvForced   int64   `json:"srv_force_releases"`
	Residual    int     `json:"residual_holders"` // after drain; must be 0
	ResidualG   int     `json:"residual_granules"`
	ResidualW   int     `json:"residual_waiters"`
}

// runNet drives a closed population of worker sessions against an
// in-process network lock server, optionally through the
// fault-injection transport, and verifies the drain invariant: after
// Close, no session's locks survive in the table. It is the
// adversarial end-to-end proof that the hardened service strands no
// granules under drops, delays, torn writes and acquire timeouts.
func runNet(cfg netConfig, out *os.File) error {
	if cfg.workers < 1 {
		return fmt.Errorf("net: workers %d < 1", cfg.workers)
	}
	if cfg.locksPer < 1 || cfg.locksPer > cfg.ltot {
		return fmt.Errorf("net: locks per txn %d outside [1, ltot=%d]", cfg.locksPer, cfg.ltot)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	table := lockmgr.NewTable()
	srv := locksrv.NewServer(lis, table, locksrv.WithGrace(time.Second))
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	addr := lis.Addr().String()

	faultCfg := locksrv.FaultConfig{}
	if cfg.faults {
		faultCfg = locksrv.FaultConfig{
			DropProb:      0.02,
			DelayProb:     0.10,
			MaxDelay:      2 * time.Millisecond,
			PartialWrites: true,
		}
	}
	var fs locksrv.FaultStats
	var (
		txnSeq     atomic.Int64
		timeouts   atomic.Int64
		reconnects atomic.Int64
		retries    atomic.Int64
		acqMu      sync.Mutex
		acqMS      []float64
	)
	root := rng.New(cfg.seed)
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := root.Stream(uint64(w) + 1)
			opts := []locksrv.ClientOption{
				locksrv.WithRetries(100),
				locksrv.WithBackoff(time.Millisecond, 50*time.Millisecond),
				locksrv.WithJitterSeed(cfg.seed + uint64(w)),
			}
			if cfg.faults {
				opts = append(opts, locksrv.WithDialer(
					locksrv.FaultyDialer(faultCfg, cfg.seed^uint64(w+1)<<16, &fs)))
			}
			var c netClient
			var err error
			if cfg.proto == "v2" {
				c, err = locksrv.DialV2(addr, opts...)
			} else {
				c, err = locksrv.Dial(addr, opts...)
			}
			if err != nil {
				errCh <- fmt.Errorf("worker %d: %w", w, err)
				return
			}
			defer c.Close()
			defer func() {
				reconnects.Add(c.Reconnects())
				retries.Add(c.Retries())
			}()
			for {
				txn := txnSeq.Add(1)
				if txn > int64(cfg.txns) {
					return
				}
				k := 1 + src.Intn(cfg.locksPer)
				picks := src.Subset(k, cfg.ltot)
				reqs := make([]lockmgr.Request, k)
				for i, g := range picks {
					mode := lockmgr.ModeShared
					if src.Bernoulli(0.5) {
						mode = lockmgr.ModeExclusive
					}
					reqs[i] = lockmgr.Request{Granule: lockmgr.Granule(g), Mode: mode}
				}
				start := time.Now()
				for {
					err := c.AcquireAllTimeout(txn, reqs, cfg.timeout)
					if err == nil {
						break
					}
					if errors.Is(err, locksrv.ErrTimeout) {
						timeouts.Add(1)
						continue // holds nothing; claim again
					}
					errCh <- fmt.Errorf("worker %d txn %d acquire: %w", w, txn, err)
					return
				}
				acqMu.Lock()
				acqMS = append(acqMS, float64(time.Since(start))/float64(time.Millisecond))
				acqMu.Unlock()
				if err := c.ReleaseAll(txn); err != nil {
					errCh <- fmt.Errorf("worker %d txn %d release: %w", w, txn, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		srv.Close()
		return err
	default:
	}

	srvStats := srv.Stats()
	if err := srv.Close(); err != nil {
		return err
	}
	if err := <-serveErr; err != nil {
		return err
	}

	qs := []float64{0, 0, 0}
	if len(acqMS) > 0 {
		qs = stats.Quantiles(acqMS, 0.50, 0.90, 0.99)
	}
	proto := cfg.proto
	if proto == "" {
		proto = "v1"
	}
	sum := netSummary{
		Workers:     cfg.workers,
		Txns:        cfg.txns,
		Proto:       proto,
		Timeouts:    timeouts.Load(),
		Reconnects:  reconnects.Load(),
		Retries:     retries.Load(),
		Drops:       fs.Drops.Load(),
		Delays:      fs.Delays.Load(),
		AcqP50MS:    qs[0],
		AcqP90MS:    qs[1],
		AcqP99MS:    qs[2],
		SrvGrants:   srvStats.Grants,
		SrvTimeouts: srvStats.Timeouts,
		SrvForced:   srvStats.ForceReleases,
		Residual:    table.HoldersCount(),
		ResidualG:   table.LockedGranules(),
		ResidualW:   table.WaitersCount(),
	}
	if sum.Residual != 0 || sum.ResidualG != 0 || sum.ResidualW != 0 {
		return fmt.Errorf("net: %d holders, %d granules, %d waiters stranded after drain",
			sum.Residual, sum.ResidualG, sum.ResidualW)
	}
	if cfg.asJSON {
		return json.NewEncoder(out).Encode(sum)
	}
	fmt.Fprintf(out, "net workers      %d (protocol %s)\n", sum.Workers, sum.Proto)
	fmt.Fprintf(out, "net txns         %d\n", sum.Txns)
	fmt.Fprintf(out, "acquire timeouts %d (retried)\n", sum.Timeouts)
	fmt.Fprintf(out, "reconnects       %d (retries %d)\n", sum.Reconnects, sum.Retries)
	fmt.Fprintf(out, "injected faults  %d drops, %d delays\n", sum.Drops, sum.Delays)
	fmt.Fprintf(out, "acquire P50      %.2f ms\n", sum.AcqP50MS)
	fmt.Fprintf(out, "acquire P90      %.2f ms\n", sum.AcqP90MS)
	fmt.Fprintf(out, "acquire P99      %.2f ms\n", sum.AcqP99MS)
	fmt.Fprintf(out, "server grants    %d (timeouts %d, force-releases %d)\n",
		sum.SrvGrants, sum.SrvTimeouts, sum.SrvForced)
	fmt.Fprintf(out, "residual holders %d (granules %d, waiters %d)\n",
		sum.Residual, sum.ResidualG, sum.ResidualW)
	return nil
}
