package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"granulock/internal/engine"
	"granulock/internal/engine/cc"
)

// engineConfig is the -engine run mode: one closed workload on the
// executable engine under a chosen concurrency-control protocol.
type engineConfig struct {
	dbsize   int
	granules int
	nodes    int
	workers  int
	txns     int
	protocol string
	seed     uint64
	asJSON   bool
}

// engineResult is the -engine -json document.
type engineResult struct {
	Protocol      string  `json:"protocol"`
	Granules      int     `json:"granules"`
	Workers       int     `json:"workers"`
	Committed     int64   `json:"committed"`
	ThroughputTPS float64 `json:"throughput_tps"`
	Restarts      int64   `json:"restarts"`
	Wounds        int64   `json:"wounds"`
	Dies          int64   `json:"dies"`
	Validations   int64   `json:"validation_fails"`
	Grants        int64   `json:"lock_grants"`
	Blocks        int64   `json:"lock_blocks"`
	Deadlocks     int64   `json:"lock_deadlocks"`
	Escalations   int64   `json:"escalations"`
	Consistent    bool    `json:"consistent"`
}

// validateProtocol resolves -protocol against the cc registry; "list"
// prints the registered names and exits.
func validateProtocol(name string) error {
	if name == "list" {
		for _, n := range cc.Names() {
			fmt.Println(n)
		}
		os.Exit(0)
	}
	if name == "" {
		return nil
	}
	if _, ok := cc.Lookup(name); !ok {
		return fmt.Errorf("unknown protocol %q (registered: %v)", name, cc.Names())
	}
	return nil
}

// runEngineMode executes the -engine workload and prints the result.
func runEngineMode(cfg engineConfig, out *os.File) error {
	if cfg.protocol == "" {
		cfg.protocol = engine.Conservative
	}
	if cfg.granules > cfg.dbsize {
		cfg.granules = cfg.dbsize
	}
	db, err := engine.Open(cfg.dbsize,
		engine.WithNodes(cfg.nodes),
		engine.WithGranules(cfg.granules),
		engine.WithProtocol(cfg.protocol),
		engine.WithInitialValue(100))
	if err != nil {
		return err
	}
	before := db.TotalBalance()
	res, err := db.RunClosed(context.Background(), engine.Workload{
		Workers: cfg.workers, TxnsPerWorker: cfg.txns, TransfersPerTxn: 2,
		ReadFraction: 0.2, WorkPerTxn: 2000, Seed: cfg.seed,
	})
	if err != nil {
		return err
	}
	s := db.Stats()
	r := engineResult{
		Protocol:      cfg.protocol,
		Granules:      cfg.granules,
		Workers:       cfg.workers,
		Committed:     res.Committed,
		ThroughputTPS: res.ThroughputTPS,
		Restarts:      s.Restarts,
		Wounds:        s.Wounds,
		Dies:          s.Dies,
		Validations:   s.ValidationFails,
		Grants:        s.Lock.Grants,
		Blocks:        s.Lock.Blocks,
		Deadlocks:     s.Lock.Deadlocks,
		Escalations:   s.Escalations,
		Consistent:    db.TotalBalance() == before,
	}
	if cfg.asJSON {
		return json.NewEncoder(out).Encode(r)
	}
	fmt.Fprintf(out, "protocol         %s\n", r.Protocol)
	fmt.Fprintf(out, "granules         %d\n", r.Granules)
	fmt.Fprintf(out, "committed        %d\n", r.Committed)
	fmt.Fprintf(out, "throughput       %.0f txn/s\n", r.ThroughputTPS)
	fmt.Fprintf(out, "restarts         %d (wounds %d, dies %d, validation %d)\n",
		r.Restarts, r.Wounds, r.Dies, r.Validations)
	fmt.Fprintf(out, "lock grants      %d (blocked %d, deadlocks %d, escalations %d)\n",
		r.Grants, r.Blocks, r.Deadlocks, r.Escalations)
	fmt.Fprintf(out, "consistent       %v\n", r.Consistent)
	if !r.Consistent {
		return fmt.Errorf("balance invariant violated under %s", r.Protocol)
	}
	return nil
}
