package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"granulock/internal/lockmgr"
	"granulock/internal/locksrv"
	"granulock/internal/rng"
	"granulock/internal/stats"
)

// clusterNetConfig parameterizes the clustered harness (-net with
// -cluster N).
type clusterNetConfig struct {
	netConfig
	nodes int  // cluster members
	kill  bool // kill one node a third of the way through the run
}

// clusterSummary is what the clustered harness reports on top of the
// single-node fields.
type clusterSummary struct {
	netSummary
	Nodes        int   `json:"nodes"`
	KilledNode   int   `json:"killed_node"` // -1 when no kill was injected
	Takeovers    int64 `json:"takeovers"`
	Reasserts    int64 `json:"reasserts"`
	LeaseExpired int64 `json:"lease_expired"`
	Redirects    int64 `json:"redirects"` // server-side redirect answers
	Parked       int64 `json:"parked_acquires"`
	CliFailovers int64 `json:"client_failovers"`
	CliRedirects int64 `json:"client_redirects"`
	LostLeases   int64 `json:"lost_leases"`
}

// runNetCluster drives worker sessions through a partitioned lock
// cluster — optionally with transport fault injection and one node
// killed mid-run — and verifies the failover invariant: the run
// completes, every lease either moves to the standby or expires, and
// after the drain no surviving node strands a granule.
func runNetCluster(cfg clusterNetConfig, out *os.File) error {
	if cfg.nodes < 2 {
		return fmt.Errorf("cluster: need at least 2 nodes, got %d", cfg.nodes)
	}
	if cfg.workers < 1 {
		return fmt.Errorf("cluster: workers %d < 1", cfg.workers)
	}
	if cfg.locksPer < 1 || cfg.locksPer > cfg.ltot {
		return fmt.Errorf("cluster: locks per txn %d outside [1, ltot=%d]", cfg.locksPer, cfg.ltot)
	}
	listeners := make([]net.Listener, cfg.nodes)
	addrs := make([]string, cfg.nodes)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
	}
	tables := make([]*lockmgr.Table, cfg.nodes)
	servers := make([]*locksrv.Server, cfg.nodes)
	for i := range servers {
		tables[i] = lockmgr.NewTable()
		servers[i] = locksrv.NewServer(listeners[i], tables[i],
			locksrv.WithGrace(time.Second),
			locksrv.WithCluster(locksrv.ClusterConfig{
				Nodes:           addrs,
				Self:            i,
				HeartbeatEvery:  20 * time.Millisecond,
				HeartbeatMisses: 2,
				RecoveryGrace:   400 * time.Millisecond,
			}))
		go servers[i].Serve()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	faultCfg := locksrv.FaultConfig{}
	if cfg.faults {
		faultCfg = locksrv.FaultConfig{
			DropProb:      0.02,
			DelayProb:     0.10,
			MaxDelay:      2 * time.Millisecond,
			PartialWrites: true,
		}
	}
	var fs locksrv.FaultStats
	var (
		txnSeq       atomic.Int64
		timeouts     atomic.Int64
		reconnects   atomic.Int64
		retries      atomic.Int64
		cliFailovers atomic.Int64
		cliRedirects atomic.Int64
		lostLeases   atomic.Int64
		acqMu        sync.Mutex
		acqMS        []float64
	)

	victim := -1
	if cfg.kill {
		victim = 1 % cfg.nodes
		// Kill the victim once a third of the workload has committed,
		// so failover happens with live traffic and standing leases.
		go func() {
			for txnSeq.Load() < int64(cfg.txns)/3 {
				time.Sleep(time.Millisecond)
			}
			servers[victim].Close()
		}()
	}

	root := rng.New(cfg.seed)
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.workers)
	for w := 0; w < cfg.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := root.Stream(uint64(w) + 1)
			opts := []locksrv.ClientOption{
				locksrv.WithRetries(20),
				locksrv.WithBackoff(time.Millisecond, 20*time.Millisecond),
				locksrv.WithJitterSeed(cfg.seed + uint64(w)),
				locksrv.WithLeaseInterval(50 * time.Millisecond),
				locksrv.WithFailoverTimeout(10 * time.Second),
			}
			if cfg.faults {
				opts = append(opts, locksrv.WithDialer(
					locksrv.FaultyDialer(faultCfg, cfg.seed^uint64(w+1)<<16, &fs)))
			}
			cc, err := locksrv.DialCluster(addrs, opts...)
			if err != nil {
				errCh <- fmt.Errorf("worker %d: %w", w, err)
				return
			}
			defer cc.Close()
			defer func() {
				reconnects.Add(cc.Reconnects())
				retries.Add(cc.Retries())
				cliFailovers.Add(cc.Failovers())
				cliRedirects.Add(cc.Redirects())
				lostLeases.Add(cc.LostLeases())
			}()
			for {
				txn := txnSeq.Add(1)
				if txn > int64(cfg.txns) {
					return
				}
				k := 1 + src.Intn(cfg.locksPer)
				picks := src.Subset(k, cfg.ltot)
				reqs := make([]lockmgr.Request, k)
				for i, g := range picks {
					mode := lockmgr.ModeShared
					if src.Bernoulli(0.5) {
						mode = lockmgr.ModeExclusive
					}
					reqs[i] = lockmgr.Request{Granule: lockmgr.Granule(g), Mode: mode}
				}
				start := time.Now()
				var aerr error
				for attempt := 0; attempt < 200; attempt++ {
					aerr = cc.AcquireAllTimeout(txn, reqs, cfg.timeout)
					if aerr == nil || errors.Is(aerr, locksrv.ErrClientClosed) {
						break
					}
					if errors.Is(aerr, locksrv.ErrTimeout) {
						timeouts.Add(1)
						continue // holds nothing; claim again
					}
					// Anything else is the failover in motion (node died
					// mid-claim, recovery window open, redirect racing a
					// takeover). The claim holds nothing; retry it.
					time.Sleep(2 * time.Millisecond)
				}
				if aerr != nil {
					errCh <- fmt.Errorf("worker %d txn %d acquire: %w", w, txn, aerr)
					return
				}
				acqMu.Lock()
				acqMS = append(acqMS, float64(time.Since(start))/float64(time.Millisecond))
				acqMu.Unlock()
				if err := cc.ReleaseAll(txn); err != nil {
					errCh <- fmt.Errorf("worker %d txn %d release: %w", w, txn, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}

	// Aggregate surviving-node stats before the drain, then close and
	// check the invariant: nothing stranded anywhere that is still up.
	var sum clusterSummary
	sum.Nodes = cfg.nodes
	sum.KilledNode = victim
	for i, s := range servers {
		if i == victim {
			continue
		}
		st := s.Stats()
		sum.SrvGrants += st.Grants
		sum.SrvTimeouts += st.Timeouts
		sum.SrvForced += st.ForceReleases
		cs := s.ClusterStats()
		sum.Takeovers += cs.Takeovers
		sum.Reasserts += cs.Reasserts
		sum.LeaseExpired += cs.LeaseExpired
		sum.Redirects += cs.Redirects
		sum.Parked += cs.ParkedAcquires
	}
	for i, s := range servers {
		if i == victim {
			continue
		}
		if err := s.Close(); err != nil {
			return err
		}
	}
	for i, tbl := range tables {
		if i == victim {
			continue
		}
		sum.Residual += tbl.HoldersCount()
		sum.ResidualG += tbl.LockedGranules()
		sum.ResidualW += tbl.WaitersCount()
	}
	if sum.Residual != 0 || sum.ResidualG != 0 || sum.ResidualW != 0 {
		return fmt.Errorf("cluster: %d holders, %d granules, %d waiters stranded after drain",
			sum.Residual, sum.ResidualG, sum.ResidualW)
	}
	if cfg.kill && sum.Takeovers == 0 {
		return fmt.Errorf("cluster: node %d was killed but no survivor recorded a takeover", victim)
	}

	qs := []float64{0, 0, 0}
	if len(acqMS) > 0 {
		qs = stats.Quantiles(acqMS, 0.50, 0.90, 0.99)
	}
	sum.Workers = cfg.workers
	sum.Txns = cfg.txns
	sum.Proto = "cluster"
	sum.Timeouts = timeouts.Load()
	sum.Reconnects = reconnects.Load()
	sum.Retries = retries.Load()
	sum.Drops = fs.Drops.Load()
	sum.Delays = fs.Delays.Load()
	sum.AcqP50MS = qs[0]
	sum.AcqP90MS = qs[1]
	sum.AcqP99MS = qs[2]
	sum.CliFailovers = cliFailovers.Load()
	sum.CliRedirects = cliRedirects.Load()
	sum.LostLeases = lostLeases.Load()
	if cfg.asJSON {
		return json.NewEncoder(out).Encode(sum)
	}
	fmt.Fprintf(out, "cluster nodes    %d (killed node %d)\n", sum.Nodes, sum.KilledNode)
	fmt.Fprintf(out, "net workers      %d\n", sum.Workers)
	fmt.Fprintf(out, "net txns         %d\n", sum.Txns)
	fmt.Fprintf(out, "acquire timeouts %d (retried)\n", sum.Timeouts)
	fmt.Fprintf(out, "reconnects       %d (retries %d)\n", sum.Reconnects, sum.Retries)
	fmt.Fprintf(out, "injected faults  %d drops, %d delays\n", sum.Drops, sum.Delays)
	fmt.Fprintf(out, "acquire P50      %.2f ms\n", sum.AcqP50MS)
	fmt.Fprintf(out, "acquire P90      %.2f ms\n", sum.AcqP90MS)
	fmt.Fprintf(out, "acquire P99      %.2f ms\n", sum.AcqP99MS)
	fmt.Fprintf(out, "takeovers        %d (reasserts %d, lease_expired %d)\n",
		sum.Takeovers, sum.Reasserts, sum.LeaseExpired)
	fmt.Fprintf(out, "redirects        %d server, %d client-followed (parked %d)\n",
		sum.Redirects, sum.CliRedirects, sum.Parked)
	fmt.Fprintf(out, "client failovers %d (lost leases %d)\n", sum.CliFailovers, sum.LostLeases)
	fmt.Fprintf(out, "server grants    %d (timeouts %d, force-releases %d)\n",
		sum.SrvGrants, sum.SrvTimeouts, sum.SrvForced)
	fmt.Fprintf(out, "residual holders %d (granules %d, waiters %d)\n",
		sum.Residual, sum.ResidualG, sum.ResidualW)
	return nil
}
