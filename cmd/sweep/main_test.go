package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestSweepLtot(t *testing.T) {
	out, err := capture(t, []string{"-param", "ltot", "-values", "1,100", "-tmax", "150"})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("output rows: %q", out)
	}
	if !strings.Contains(lines[0], "throughput") {
		t.Fatalf("header: %q", lines[0])
	}
}

func TestSweepMetrics(t *testing.T) {
	for _, metric := range []string{"throughput", "response", "usefulio", "usefulcpu", "lockoverhead", "denialrate"} {
		if _, err := capture(t, []string{"-param", "npros", "-values", "2", "-metric", metric, "-tmax", "100"}); err != nil {
			t.Errorf("metric %s: %v", metric, err)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	bad := [][]string{
		{"-param", "bogus"},
		{"-metric", "bogus"},
		{"-values", "not-a-number"},
		{"-param", "ltot", "-values", "0", "-tmax", "100"}, // invalid model params
	}
	for _, args := range bad {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
