// Command sweep runs the simulation model over one swept parameter and
// prints a metric table — a generic tool for exploring configurations
// beyond the paper's figures.
//
// Usage:
//
//	sweep -param ltot -values 1,10,100,1000,5000 -npros 20
//	sweep -param npros -values 1,2,4,8,16,32 -ltot 100 -metric response
//
// With -engine the sweep drives the executable engine instead of the
// simulation model: -param maps onto the engine (ltot=granules,
// ntrans=workers, npros=nodes) and -protocol picks the concurrency-
// control protocol from the cc registry (-protocol list prints it):
//
//	sweep -engine -protocol wait-die -param ltot -values 1,10,100 -dbsize 1000
//	sweep -engine -protocol optimistic -param ntrans -values 1,2,4,8,16 -metric restarts
//
// -metrics appends the run's metric registry — cell progress counters,
// per-cell wall-time histogram, and the last cell's simulation gauges —
// to stderr in Prometheus text format after the table.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"granulock"
	"granulock/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	p := granulock.DefaultParams()
	fs.IntVar(&p.DBSize, "dbsize", p.DBSize, "database size")
	fs.IntVar(&p.Ltot, "ltot", p.Ltot, "number of locks")
	fs.IntVar(&p.NTrans, "ntrans", p.NTrans, "transactions in the system")
	fs.IntVar(&p.MaxTransize, "maxtransize", p.MaxTransize, "maximum transaction size")
	fs.IntVar(&p.NPros, "npros", p.NPros, "number of processors")
	fs.Float64Var(&p.TMax, "tmax", p.TMax, "simulated time units")
	seed := fs.Uint64("seed", 1, "random seed")
	param := fs.String("param", "ltot", "parameter to sweep: ltot, npros, ntrans or maxtransize")
	values := fs.String("values", "1,10,100,1000,5000", "comma-separated sweep values")
	metric := fs.String("metric", "throughput", "metric to report: throughput, response, usefulio, usefulcpu, lockoverhead, denialrate")
	withMetrics := fs.Bool("metrics", false, "print the run's metric registry to stderr in Prometheus text format")
	engineMode := fs.Bool("engine", false, "sweep the executable engine instead of the simulation (params: ltot=granules, ntrans=workers, npros=nodes)")
	protocol := fs.String("protocol", "", "engine concurrency-control protocol (with -engine); \"list\" prints the registry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateProtocol(*protocol); err != nil {
		return err
	}
	p.Seed = *seed

	if *engineMode {
		return runEngineSweep(p, *protocol, *param, *values, *metric, out)
	}

	get, err := metricAccessor(*metric)
	if err != nil {
		return err
	}
	set, err := paramSetter(*param)
	if err != nil {
		return err
	}

	var reg *granulock.Registry
	var opts []granulock.RunOption
	if *withMetrics {
		reg = granulock.NewRegistry()
		opts = append(opts, granulock.WithMetrics(reg))
	}

	fields := strings.Split(*values, ",")
	start := time.Now()
	// Families register once, before the sweep loop; the loop only
	// touches the resolved series (metricname: idempotent-by-construction).
	var cellsCompleted *obs.Counter
	var cellSeconds *obs.Histogram
	if reg != nil {
		reg.NewCounterVec("granulock_sweep_cells_total",
			"Simulation cells scheduled by parameter sweeps.", "figure").
			With("cmd-sweep").Add(int64(len(fields)))
		cellsCompleted = reg.NewCounterVec("granulock_sweep_cells_completed_total",
			"Simulation cells completed by parameter sweeps.", "figure").
			With("cmd-sweep")
		cellSeconds = reg.NewHistogramVec("granulock_sweep_cell_seconds",
			"Wall time per completed sweep cell in seconds (cache hits are near zero).",
			granulock.ExpBuckets(0.001, 4, 10), "figure").
			With("cmd-sweep")
	}
	fmt.Fprintf(out, "%12s  %14s\n", *param, *metric)
	for _, field := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad sweep value %q: %w", field, err)
		}
		q := p
		set(&q, v)
		cellStart := time.Now()
		m, err := granulock.Run(q, opts...)
		if err != nil {
			return fmt.Errorf("%s=%d: %w", *param, v, err)
		}
		if reg != nil {
			cellsCompleted.Inc()
			cellSeconds.Observe(time.Since(cellStart).Seconds())
		}
		fmt.Fprintf(out, "%12d  %14.4f\n", v, get(m))
	}
	if reg != nil {
		reg.NewGauge("granulock_sweep_wall_seconds",
			"Wall time of the whole sweep in seconds.").Set(time.Since(start).Seconds())
		if _, err := reg.WriteTo(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

func metricAccessor(name string) (func(granulock.Metrics) float64, error) {
	switch name {
	case "throughput":
		return func(m granulock.Metrics) float64 { return m.Throughput }, nil
	case "response":
		return func(m granulock.Metrics) float64 { return m.MeanResponse }, nil
	case "usefulio":
		return func(m granulock.Metrics) float64 { return m.UsefulIOs }, nil
	case "usefulcpu":
		return func(m granulock.Metrics) float64 { return m.UsefulCPUs }, nil
	case "lockoverhead":
		return func(m granulock.Metrics) float64 { return m.LockCPUs + m.LockIOs }, nil
	case "denialrate":
		return func(m granulock.Metrics) float64 { return m.DenialRate }, nil
	}
	return nil, fmt.Errorf("unknown metric %q", name)
}

func paramSetter(name string) (func(*granulock.Params, int), error) {
	switch name {
	case "ltot":
		return func(p *granulock.Params, v int) { p.Ltot = v }, nil
	case "npros":
		return func(p *granulock.Params, v int) { p.NPros = v }, nil
	case "ntrans":
		return func(p *granulock.Params, v int) { p.NTrans = v }, nil
	case "maxtransize":
		return func(p *granulock.Params, v int) { p.MaxTransize = v }, nil
	}
	return nil, fmt.Errorf("unknown sweep parameter %q", name)
}
