package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"

	"granulock"
	"granulock/internal/engine"
	"granulock/internal/engine/cc"
)

// validateProtocol resolves -protocol against the cc registry; "list"
// prints the registered names and exits.
func validateProtocol(name string) error {
	if name == "list" {
		for _, n := range cc.Names() {
			fmt.Println(n)
		}
		os.Exit(0)
	}
	if name == "" {
		return nil
	}
	if _, ok := cc.Lookup(name); !ok {
		return fmt.Errorf("unknown protocol %q (registered: %v)", name, cc.Names())
	}
	return nil
}

// runEngineSweep sweeps one parameter over the executable engine:
// each value runs a closed bank-transfer workload under the chosen
// protocol and reports the requested metric. Simulation parameters map
// onto the engine as ltot=granules, ntrans=workers, npros=nodes.
func runEngineSweep(p granulock.Params, protocol, param, values, metric string, out *os.File) error {
	if protocol == "" {
		protocol = engine.Conservative
	}
	type cell struct {
		granules, workers, nodes int
	}
	base := cell{granules: p.Ltot, workers: p.NTrans, nodes: p.NPros}
	var set func(*cell, int)
	switch param {
	case "ltot":
		set = func(c *cell, v int) { c.granules = v }
	case "ntrans":
		set = func(c *cell, v int) { c.workers = v }
	case "npros":
		set = func(c *cell, v int) { c.nodes = v }
	default:
		return fmt.Errorf("engine sweep supports -param ltot, ntrans or npros (got %q)", param)
	}
	type accessor func(res engine.Result, s engine.Stats) float64
	var get accessor
	switch metric {
	case "throughput":
		get = func(res engine.Result, _ engine.Stats) float64 { return res.ThroughputTPS }
	case "denialrate":
		get = func(_ engine.Result, s engine.Stats) float64 {
			if s.Lock.Grants == 0 {
				return 0
			}
			return float64(s.Lock.Blocks) / float64(s.Lock.Grants)
		}
	case "restarts":
		get = func(_ engine.Result, s engine.Stats) float64 { return float64(s.Restarts) }
	default:
		return fmt.Errorf("engine sweep supports -metric throughput, denialrate or restarts (got %q)", metric)
	}

	fmt.Fprintf(out, "%12s  %14s  (engine, protocol=%s)\n", param, metric, protocol)
	for _, field := range strings.Split(values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			return fmt.Errorf("bad sweep value %q: %w", field, err)
		}
		c := base
		set(&c, v)
		if c.granules > p.DBSize {
			c.granules = p.DBSize
		}
		db, err := engine.Open(p.DBSize,
			engine.WithNodes(c.nodes),
			engine.WithGranules(c.granules),
			engine.WithProtocol(protocol),
			engine.WithInitialValue(100))
		if err != nil {
			return fmt.Errorf("%s=%d: %w", param, v, err)
		}
		res, err := db.RunClosed(context.Background(), engine.Workload{
			Workers: c.workers, TxnsPerWorker: 200, TransfersPerTxn: 2,
			ReadFraction: 0.2, WorkPerTxn: 2000, Seed: p.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s=%d: %w", param, v, err)
		}
		fmt.Fprintf(out, "%12d  %14.4f\n", v, get(res, db.Stats()))
	}
	return nil
}
