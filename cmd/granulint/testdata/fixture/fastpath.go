package fixture

import "sync/atomic"

// fastState mirrors the lockmgr packed-word record; its word may only
// be touched in this file.
type fastState struct {
	word atomic.Uint64
}

const fastBit = 1 << 61

func fpPack(txn uint64) uint64 { return fastBit | txn }

func fastRelease(fs *fastState, txn uint64) bool {
	return fs.word.CompareAndSwap(fpPack(txn), 0)
}
