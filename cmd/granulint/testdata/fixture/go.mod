module granulint.fixture

go 1.22
