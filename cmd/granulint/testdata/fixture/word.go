package fixture

// atomicword: a raw atomic on the packed word outside fastpath.go.
func pokeWord(fs *fastState) {
	fs.word.Add(1)
}
