package fixture

// Registry mirrors the obs registration surface by name.
type Registry struct{}

type Counter struct{}

func (r *Registry) NewCounter(name, help string) *Counter { return &Counter{} }

// metricname: a family outside the granulock_<subsystem>_<name> grammar.
func register(r *Registry) *Counter {
	return r.NewCounter("fixture_counter", "seeded violation")
}
