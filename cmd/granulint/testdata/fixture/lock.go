// Package fixture seeds exactly one violation per granulint analyzer;
// the cmd/granulint integration test asserts the multichecker catches
// all of them and exits non-zero.
package fixture

import "sync"

type shard struct {
	mu sync.Mutex
}

type table struct {
	shards [4]shard
}

// lockorder: stripes acquired in descending index order.
func swapStripes(t *table) {
	t.shards[3].mu.Lock()
	t.shards[0].mu.Lock()
	t.shards[0].mu.Unlock()
	t.shards[3].mu.Unlock()
}
