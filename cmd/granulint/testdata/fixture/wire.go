package fixture

import "errors"

//granulint:wireboundary

// errtaxonomy: a bare errors.New inside a wire-boundary function body.
func decode(b []byte) error {
	if len(b) == 0 {
		return errors.New("fixture: empty frame")
	}
	return nil
}
