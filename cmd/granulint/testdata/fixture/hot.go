package fixture

import "fmt"

// hotpath: an annotated function that defers into fmt.
//
//granulint:hotpath
func hotSum(vals []int) int {
	defer fmt.Println("done")
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return sum
}

// directive: a misspelled verb must be caught by the validator.
//
//granulint:hotpaths
func coldSum(vals []int) int {
	sum := 0
	for _, v := range vals {
		sum += v
	}
	return sum
}
