// Command granulint is the repo's invariant multichecker: it runs the
// granulint analyzer suite (internal/analysis) over Go packages and
// exits non-zero on any unsuppressed finding. It is the static half of
// `make verify` — the analyzers mechanize the concurrency invariants
// (stripe lock order, the packed fast-path word's state machine, the
// zero-alloc hot paths, the wire error taxonomy, metric naming) that
// the test suite can only catch by luck of interleaving.
//
// Usage:
//
//	granulint [-run a,b,...] [-C dir] [packages]
//
// packages are go list patterns, default ./... . Exit status: 0 clean,
// 1 findings, 2 usage or load failure.
//
// Findings are suppressed line-by-line with
//
//	//granulint:ignore <analyzer> <reason>
//
// where the reason is mandatory; see docs/ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"granulock/internal/analysis"
	"granulock/internal/analysis/driver"
)

func main() {
	var (
		run  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		dir  = flag.String("C", "", "change to this directory before loading packages")
		list = flag.Bool("list", false, "list registered analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: granulint [-run a,b,...] [-C dir] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var analyzers []*analysis.Analyzer
	if *run != "" {
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a, ok := analysis.ByName(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "granulint: unknown analyzer %q (see granulint -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	n, err := driver.Run(driver.Options{
		Dir:       *dir,
		Patterns:  flag.Args(),
		Analyzers: analyzers,
		Out:       os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "granulint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "granulint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
