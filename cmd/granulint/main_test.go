package main_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildGranulint compiles the multichecker once into the test's temp
// dir and returns the binary path.
func buildGranulint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "granulint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building granulint: %v\n%s", err, out)
	}
	return bin
}

// runGranulint executes the binary and returns its combined output and
// exit code.
func runGranulint(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running granulint %v: %v\n%s", args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestFixtureModule is the end-to-end check the suite hangs off: the
// fixture module under testdata/ seeds one violation per analyzer, and
// the built binary must catch every one of them and exit 1.
func TestFixtureModule(t *testing.T) {
	bin := buildGranulint(t)
	out, code := runGranulint(t, bin, "-C", "testdata/fixture", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\n%s", code, out)
	}
	for _, analyzer := range []string{"lockorder", "atomicword", "hotpath", "errtaxonomy", "metricname", "directive"} {
		if !strings.Contains(out, " "+analyzer+": ") {
			t.Errorf("no %s finding in output:\n%s", analyzer, out)
		}
	}
}

// TestRunFilter: -run restricts the suite to the named analyzers.
func TestRunFilter(t *testing.T) {
	bin := buildGranulint(t)
	out, code := runGranulint(t, bin, "-run", "hotpath", "-C", "testdata/fixture", "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\n%s", code, out)
	}
	if !strings.Contains(out, " hotpath: ") {
		t.Errorf("no hotpath finding in filtered output:\n%s", out)
	}
	for _, analyzer := range []string{"lockorder", "atomicword", "errtaxonomy", "metricname"} {
		if strings.Contains(out, " "+analyzer+": ") {
			t.Errorf("-run hotpath leaked a %s finding:\n%s", analyzer, out)
		}
	}
}

// TestUnknownAnalyzer: a bad -run name is a usage error, not findings.
func TestUnknownAnalyzer(t *testing.T) {
	bin := buildGranulint(t)
	out, code := runGranulint(t, bin, "-run", "nosuch", "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage)\n%s", code, out)
	}
	if !strings.Contains(out, "unknown analyzer") {
		t.Errorf("missing unknown-analyzer message:\n%s", out)
	}
}

// TestList: -list prints the registry and exits 0.
func TestList(t *testing.T) {
	bin := buildGranulint(t)
	out, code := runGranulint(t, bin, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	for _, analyzer := range []string{"lockorder", "atomicword", "hotpath", "errtaxonomy", "metricname", "directive"} {
		if !strings.Contains(out, analyzer) {
			t.Errorf("-list omits %s:\n%s", analyzer, out)
		}
	}
}
