package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSelectedFigure(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-only", "fig7,table1", "-tmax", "100", "-q"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.txt", "fig7.txt", "fig7.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil || len(data) == 0 {
			t.Fatalf("%s missing or empty: %v", name, err)
		}
	}
	txt, _ := os.ReadFile(filepath.Join(dir, "fig7.txt"))
	if !strings.Contains(string(txt), "Figure 7") {
		t.Fatal("figure text content wrong")
	}
}

func TestRunExtensionSelection(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-only", "ext-requeue", "-tmax", "100", "-q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "ext-requeue.csv")); err != nil {
		t.Fatal(err)
	}
	// table1 is skipped when -only excludes it.
	if _, err := os.Stat(filepath.Join(dir, "table1.txt")); !os.IsNotExist(err) {
		t.Fatal("table1 written despite -only filter")
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-only", "fig99", "-tmax", "100", "-q"}); err == nil {
		t.Fatal("unknown figure id accepted")
	}
}
