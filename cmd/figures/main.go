// Command figures regenerates the paper's evaluation: Table 1 and
// Figures 2 through 12. Each experiment is written as a text report
// (tables plus ASCII charts) and a CSV file.
//
// Usage:
//
//	figures [-out results] [-only fig2,fig9] [-tmax 1000] [-reps 1]
//
// With no flags the full suite runs at the paper's horizon into
// ./results. Use -tmax 200 for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"granulock"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	outDir := fs.String("out", "results", "output directory")
	only := fs.String("only", "", "comma-separated experiment ids (default: all paper figures); 'table1' selects the parameter table")
	ext := fs.Bool("ext", false, "also run the extension experiments (ext-sched, ext-requeue, ext-locksharing)")
	tmax := fs.Float64("tmax", 0, "override simulation horizon (0 = paper default)")
	reps := fs.Int("reps", 1, "replications per point")
	seed := fs.Uint64("seed", 1, "base random seed")
	quiet := fs.Bool("q", false, "suppress progress output")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	ids := granulock.FigureIDs()
	if *ext {
		ids = append(ids, granulock.ExtensionIDs()...)
	}
	wantTable := true
	if *only != "" {
		sel := strings.Split(*only, ",")
		wantTable = false
		var filtered []string
		for _, s := range sel {
			s = strings.TrimSpace(s)
			if s == "table1" {
				wantTable = true
				continue
			}
			filtered = append(filtered, s)
		}
		ids = filtered
	}

	if wantTable {
		path := filepath.Join(*outDir, "table1.txt")
		if err := os.WriteFile(path, []byte(granulock.Table1()), 0o644); err != nil {
			return err
		}
		if !*quiet {
			fmt.Println("wrote", path)
		}
	}

	opts := granulock.Options{TMax: *tmax, Seed: *seed, Replications: *reps}
	for _, id := range ids {
		start := time.Now()
		fig, err := granulock.RunFigure(id, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		txt := filepath.Join(*outDir, id+".txt")
		if err := os.WriteFile(txt, []byte(granulock.RenderText(fig)), 0o644); err != nil {
			return err
		}
		csv := filepath.Join(*outDir, id+".csv")
		if err := os.WriteFile(csv, []byte(granulock.RenderCSV(fig)), 0o644); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("wrote %s and %s (%.1fs)\n", txt, csv, time.Since(start).Seconds())
		}
	}
	return nil
}
