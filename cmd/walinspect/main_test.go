package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"granulock/internal/wal"
)

func writeLog(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	w := wal.NewWriter(&buf)
	if err := w.AppendGroup([]wal.Record{
		{Kind: wal.KindBegin, Txn: 1},
		{Kind: wal.KindUpdate, Txn: 1, Entity: 3, Before: 10, After: 20},
		{Kind: wal.KindCommit, Txn: 1},
		{Kind: wal.KindBegin, Txn: 2},
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test.wal")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, path string, verbose bool) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(path, verbose, f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSummary(t *testing.T) {
	out := capture(t, writeLog(t), false)
	for _, want := range []string{"records     4", "committed   1", "incomplete  1", "torn tail   false"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestVerboseDumpsRecords(t *testing.T) {
	out := capture(t, writeLog(t), true)
	if !strings.Contains(out, "entity 3: 10 -> 20") {
		t.Fatalf("verbose dump missing update:\n%s", out)
	}
	if !strings.Contains(out, "commit") {
		t.Fatalf("verbose dump missing commit:\n%s", out)
	}
}

func TestMissingFile(t *testing.T) {
	if err := run("/nonexistent/path.wal", false, os.Stdout); err == nil {
		t.Fatal("missing file accepted")
	}
}
