package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"granulock/internal/engine"
	"granulock/internal/wal"
)

func writeLog(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	w := wal.NewWriter(&buf)
	if err := w.AppendGroup([]wal.Record{
		{Kind: wal.KindBegin, Txn: 1},
		{Kind: wal.KindUpdate, Txn: 1, Entity: 3, Before: 10, After: 20},
		{Kind: wal.KindCommit, Txn: 1},
		{Kind: wal.KindBegin, Txn: 2},
	}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "test.wal")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, path string, verbose, verify bool) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(path, verbose, verify, f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSummary(t *testing.T) {
	out := capture(t, writeLog(t), false, false)
	for _, want := range []string{"records     4", "committed   1", "incomplete  1", "torn tail   false"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestVerboseDumpsRecords(t *testing.T) {
	out := capture(t, writeLog(t), true, false)
	if !strings.Contains(out, "entity 3: 10 -> 20") {
		t.Fatalf("verbose dump missing update:\n%s", out)
	}
	if !strings.Contains(out, "commit") {
		t.Fatalf("verbose dump missing commit:\n%s", out)
	}
}

func TestMissingFile(t *testing.T) {
	if err := run("/nonexistent/path.wal", false, false, os.Stdout); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestInspectHeaderedLogFile checks that a wal.OpenFile log (GWALLOG1
// header) is recognized and summarized with its base sequence number.
func TestInspectHeaderedLogFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grants.log")
	log, err := wal.OpenFile(path, wal.WithPreallocate(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Commit([]wal.Record{
		{Kind: wal.KindBegin, Txn: 1},
		{Kind: wal.KindUpdate, Txn: 1, Entity: 9, Before: 0, After: 5},
		{Kind: wal.KindCommit, Txn: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	out := capture(t, path, true, false)
	for _, want := range []string{"log file    GWALLOG1 (base seq 0)", "entity 9: 0 -> 5", "records     3", "committed   1", "max txn     1"} {
		if !strings.Contains(out, want) {
			t.Errorf("log-file inspection missing %q:\n%s", want, out)
		}
	}
}

// TestInspectSnapshotFile checks the GWALSNP1 header dump, including
// the -v entry listing.
func TestInspectSnapshotFile(t *testing.T) {
	s := &wal.Snapshot{
		Seqs:    []int64{10, 0, 7},
		Entries: []wal.SnapshotEntry{{Entity: 4, Value: 40}, {Entity: 5, Value: 50}},
	}
	path := filepath.Join(t.TempDir(), "snapshot.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteSnapshot(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out := capture(t, path, true, false)
	for _, want := range []string{"snapshot    GWALSNP1, 3 logs, 2 entries", "seq vector  [10 0 7]", "entity 4", "= 50"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot inspection missing %q:\n%s", want, out)
		}
	}
}

// TestInspectDirAndVerify builds a real durable engine directory — two
// partition logs, a mid-life checkpoint, a tail past it — and checks
// both the static per-log summary and the -verify replay report.
func TestInspectDirAndVerify(t *testing.T) {
	dir := t.TempDir()
	db, _, err := engine.OpenDurable(dir, 40,
		engine.WithNodes(2),
		engine.WithWALOptions(wal.WithPreallocate(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	transfer := func(from, to int) {
		t.Helper()
		if _, err := db.Execute(ctx, engine.Transfer(from, to, 1)); err != nil {
			t.Fatal(err)
		}
	}
	transfer(0, 1) // cross-partition: nodes 0 and 1
	transfer(2, 3)
	if err := db.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	transfer(4, 5) // tail past the snapshot
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	out := capture(t, dir, false, false)
	for _, want := range []string{"2 partition logs", "snapshot    GWALSNP1", "log 0", "log 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("dir inspection missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "verify") {
		t.Fatalf("verify output without -verify:\n%s", out)
	}

	out = capture(t, dir, false, true)
	if !strings.Contains(out, "verify      recovered seqs") {
		t.Fatalf("-verify missing recovered seqs:\n%s", out)
	}
	if !strings.Contains(out, "verify      committed 1 ") {
		// Only the post-checkpoint transfer replays from the logs; the
		// first two live in the snapshot.
		t.Fatalf("-verify committed count wrong:\n%s", out)
	}
	if !strings.Contains(out, "cross-partition partials 0, order violations 0") {
		t.Fatalf("-verify reported damage on a clean directory:\n%s", out)
	}
}

// TestInspectEmptyDir rejects a directory with no partition logs.
func TestInspectEmptyDir(t *testing.T) {
	if err := run(t.TempDir(), false, false, os.Stdout); err == nil {
		t.Fatal("empty directory accepted")
	}
}
