// Command walinspect dumps a write-ahead log file and summarizes what
// recovery would do with it.
//
// Usage:
//
//	walinspect [-v] <logfile>
//
// With -v every record prints; otherwise only the recovery summary.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"granulock/internal/wal"
)

func main() {
	verbose := flag.Bool("v", false, "print every record")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: walinspect [-v] <logfile>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verbose, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(1)
	}
}

func run(path string, verbose bool, out *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	if verbose {
		// First pass: dump records. (Recovery below re-reads the file.)
		r := wal.NewReader(f)
		for i := 0; ; i++ {
			rec, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					fmt.Fprintf(out, "%6d  -- end of usable log: %v\n", i, err)
				}
				break
			}
			switch rec.Kind {
			case wal.KindUpdate:
				fmt.Fprintf(out, "%6d  txn %-6d %-7s entity %d: %d -> %d\n",
					i, rec.Txn, rec.Kind, rec.Entity, rec.Before, rec.After)
			default:
				fmt.Fprintf(out, "%6d  txn %-6d %-7s\n", i, rec.Txn, rec.Kind)
			}
		}
		if _, err := f.Seek(0, 0); err != nil {
			return err
		}
	}

	applied := 0
	stats, err := wal.Recover(wal.NewReader(f), func(entity, value int64) { applied++ })
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "records     %d\n", stats.Records)
	fmt.Fprintf(out, "committed   %d transactions (%d updates would be redone)\n", stats.Committed, applied)
	fmt.Fprintf(out, "aborted     %d\n", stats.Aborted)
	fmt.Fprintf(out, "incomplete  %d (discarded by recovery)\n", stats.Incomplete)
	fmt.Fprintf(out, "torn tail   %v\n", stats.Torn)
	return nil
}
