// Command walinspect dumps write-ahead log artifacts and summarizes
// what recovery would do with them.
//
// Usage:
//
//	walinspect [-v] [-verify] <path>
//
// The path may be:
//
//   - a WAL directory (engine.OpenDurable layout: wal-<k>.log per
//     partition plus snapshot.snap) — prints the snapshot header and a
//     per-partition log summary; with -verify it also replays the
//     snapshot and every log tail through the cross-partition ordering
//     rule and reports the recovered sequence numbers;
//   - a log file written by wal.OpenFile (header magic GWALLOG1);
//   - a snapshot file (magic GWALSNP1);
//   - a headerless stream of raw records (the wal.Writer layout).
//
// With -v every record (or snapshot entry) prints; otherwise only the
// summaries.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"granulock/internal/wal"
)

// The artifact magics, from the on-disk formats in docs/WAL.md.
const (
	logFileMagic  = "GWALLOG1"
	snapshotMagic = "GWALSNP1"
)

func main() {
	verbose := flag.Bool("v", false, "print every record or snapshot entry")
	verify := flag.Bool("verify", false, "replay a WAL directory and report the recovered sequence numbers")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: walinspect [-v] [-verify] <path>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *verbose, *verify, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "walinspect:", err)
		os.Exit(1)
	}
}

// run dispatches on what the path holds.
func run(path string, verbose, verify bool, out *os.File) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return runDir(path, verbose, verify, out)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	magic := make([]byte, 8)
	n, _ := io.ReadFull(f, magic)
	f.Close()
	switch string(magic[:n]) {
	case snapshotMagic:
		return runSnapshot(path, verbose, out)
	case logFileMagic:
		return runLogFile(path, verbose, out)
	default:
		return runRaw(path, verbose, out)
	}
}

// dumpRecords prints every record a reader yields, one per line.
func dumpRecords(r *wal.Reader, out *os.File) {
	for i := 0; ; i++ {
		rec, err := r.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				fmt.Fprintf(out, "%6d  -- end of usable log: %v\n", i, err)
			}
			break
		}
		switch rec.Kind {
		case wal.KindUpdate:
			fmt.Fprintf(out, "%6d  txn %-6d %-7s entity %d: %d -> %d\n",
				i, rec.Txn, rec.Kind, rec.Entity, rec.Before, rec.After)
		case wal.KindCommit:
			if rec.Entity != 0 {
				fmt.Fprintf(out, "%6d  txn %-6d %-7s mask %#b\n", i, rec.Txn, rec.Kind, rec.Entity)
				continue
			}
			fmt.Fprintf(out, "%6d  txn %-6d %-7s\n", i, rec.Txn, rec.Kind)
		default:
			fmt.Fprintf(out, "%6d  txn %-6d %-7s\n", i, rec.Txn, rec.Kind)
		}
	}
}

// recoverSummary replays one reader through single-log recovery and
// prints the outcome counts.
func recoverSummary(r *wal.Reader, out *os.File) error {
	applied := 0
	stats, err := wal.Recover(r, func(entity, value int64) { applied++ })
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "records     %d\n", stats.Records)
	fmt.Fprintf(out, "committed   %d transactions (%d updates would be redone)\n", stats.Committed, applied)
	fmt.Fprintf(out, "aborted     %d\n", stats.Aborted)
	fmt.Fprintf(out, "incomplete  %d (discarded by recovery)\n", stats.Incomplete)
	fmt.Fprintf(out, "max txn     %d\n", stats.MaxTxn)
	fmt.Fprintf(out, "torn tail   %v\n", stats.Torn)
	return nil
}

// runRaw inspects a headerless record stream (the wal.Writer layout).
func runRaw(path string, verbose bool, out *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if verbose {
		dumpRecords(wal.NewReader(f), out)
		if _, err := f.Seek(0, 0); err != nil {
			return err
		}
	}
	return recoverSummary(wal.NewReader(f), out)
}

// runLogFile inspects a headered log file written by wal.OpenFile.
func runLogFile(path string, verbose bool, out *os.File) error {
	r, base, closer, err := wal.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "log file    %s (base seq %d)\n", logFileMagic, base)
	if verbose {
		dumpRecords(r, out)
		closer.Close()
		if r, _, closer, err = wal.ReadFile(path); err != nil {
			return err
		}
	}
	defer closer.Close()
	return recoverSummary(r, out)
}

// runSnapshot inspects a checkpoint snapshot file.
func runSnapshot(path string, verbose bool, out *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := wal.ReadSnapshot(f)
	if err != nil {
		return err
	}
	printSnapshot(s, verbose, out)
	return nil
}

func printSnapshot(s *wal.Snapshot, verbose bool, out *os.File) {
	fmt.Fprintf(out, "snapshot    %s, %d logs, %d entries\n", snapshotMagic, len(s.Seqs), len(s.Entries))
	fmt.Fprintf(out, "seq vector  %v\n", s.Seqs)
	if verbose {
		for _, e := range s.Entries {
			fmt.Fprintf(out, "        entity %-8d = %d\n", e.Entity, e.Value)
		}
	}
}

// runDir inspects a WAL directory: the snapshot header plus one line
// per partition log; with verify it additionally replays the directory
// exactly as engine.OpenDurable would and reports the recovered
// sequence numbers.
func runDir(path string, verbose, verify bool, out *os.File) error {
	// Count the partition logs.
	parts := 0
	for {
		if _, err := os.Stat(filepath.Join(path, fmt.Sprintf("wal-%d.log", parts))); err != nil {
			break
		}
		parts++
	}
	if parts == 0 {
		return fmt.Errorf("%s holds no wal-<k>.log files", path)
	}
	fmt.Fprintf(out, "directory   %s, %d partition logs\n", path, parts)

	snapFile := filepath.Join(path, "snapshot.snap")
	if f, err := os.Open(snapFile); err == nil {
		s, serr := wal.ReadSnapshot(f)
		f.Close()
		if serr != nil {
			fmt.Fprintf(out, "snapshot    CORRUPT: %v\n", serr)
		} else {
			printSnapshot(s, verbose, out)
		}
	} else {
		fmt.Fprintln(out, "snapshot    none")
	}

	for k := 0; k < parts; k++ {
		lp := filepath.Join(path, fmt.Sprintf("wal-%d.log", k))
		r, base, closer, err := wal.ReadFile(lp)
		if err != nil {
			fmt.Fprintf(out, "log %-3d     %v\n", k, err)
			continue
		}
		if verbose {
			fmt.Fprintf(out, "log %d records:\n", k)
			dumpRecords(r, out)
			closer.Close()
			if r, base, closer, err = wal.ReadFile(lp); err != nil {
				return err
			}
		}
		records, torn := 0, false
		for {
			_, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				torn = true
				break
			}
			records++
		}
		closer.Close()
		fmt.Fprintf(out, "log %-3d     base %d, %d records, end seq %d, torn %v\n",
			k, base, records, base+int64(records), torn)
	}

	if !verify {
		return nil
	}
	// Full replay, exactly as engine.OpenDurable does it: snapshot
	// entries first, then every log's tail past the snapshot's sequence
	// vector, under the cross-partition ordering rule.
	d, err := wal.OpenDir(path, parts, wal.WithPreallocate(0))
	if err != nil {
		return err
	}
	defer d.Close()
	applied := 0
	stats, err := d.Recover(func(entity, value int64) { applied++ })
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	fmt.Fprintf(out, "verify      committed %d (applied %d snapshot+tail updates), aborted %d, incomplete %d\n",
		stats.Committed, applied, stats.Aborted, stats.Incomplete)
	fmt.Fprintf(out, "verify      cross-partition partials %d, order violations %d, max txn %d\n",
		stats.CrossPartial, stats.OrderViolations, stats.MaxTxn)
	fmt.Fprintf(out, "verify      recovered seqs %v\n", d.Set().Seqs())
	return nil
}
