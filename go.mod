module granulock

go 1.22
