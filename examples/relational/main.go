// Relational: drive the relational layer (catalog + multigranularity
// locking + escalation + undo) with a banking workload, and show how
// access patterns map onto the paper's placement strategies on a real
// system: range scans lock few granules (best placement), scattered
// point updates lock one granule each (worst placement), and full scans
// take a single coarse table lock.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"granulock/internal/relation"
)

func main() {
	accounts := flag.Int("accounts", 200, "number of bank accounts")
	granule := flag.Int("granule", 10, "tuples per lock granule")
	workers := flag.Int("workers", 8, "concurrent tellers")
	txns := flag.Int("txns", 200, "transactions per teller")
	flag.Parse()

	ctx := context.Background()
	db := relation.NewDB("bank", relation.WithEscalation(16))
	tbl, err := db.CreateTable("accounts", relation.Schema{Columns: []relation.Column{
		{Name: "owner", Type: relation.String},
		{Name: "balance", Type: relation.Int},
	}}, 4, *granule)
	if err != nil {
		log.Fatal(err)
	}

	if err := db.Exec(ctx, func(txn *relation.Txn) error {
		for i := 0; i < *accounts; i++ {
			if _, err := txn.Insert(tbl, relation.Tuple{
				relation.StrDatum(fmt.Sprintf("acct%04d", i)),
				relation.IntDatum(1000),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	initial := int64(*accounts) * 1000

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *txns; i++ {
				from := int64((w*17 + i*7) % *accounts)
				to := int64((w*5 + i*13 + 1) % *accounts)
				err := db.Exec(ctx, func(txn *relation.Txn) error {
					a, err := txn.Get(tbl, from)
					if err != nil {
						return err
					}
					b, err := txn.Get(tbl, to)
					if err != nil {
						return err
					}
					if err := txn.Update(tbl, from, "balance", relation.IntDatum(a[1].Int-7)); err != nil {
						return err
					}
					return txn.Update(tbl, to, "balance", relation.IntDatum(b[1].Int+7))
				})
				if err != nil {
					log.Fatalf("teller %d: %v", w, err)
				}
				// Every 50th transaction audits a branch with a range
				// scan: sequential access, few locks (best placement).
				if i%50 == 49 {
					err := db.Exec(ctx, func(txn *relation.Txn) error {
						_, err := txn.RangeScan(tbl, 0, int64(*granule*4))
						return err
					})
					if err != nil {
						log.Fatalf("audit: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Full audit under one coarse table lock.
	var total int64
	if err := db.Exec(ctx, func(txn *relation.Txn) error {
		all, err := txn.Scan(tbl, nil)
		if err != nil {
			return err
		}
		total = 0
		for _, tup := range all {
			total += tup[1].Int
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}

	s := db.Stats()
	fmt.Printf("accounts            %d (granule size %d)\n", *accounts, *granule)
	fmt.Printf("commits             %d\n", s.Commits)
	fmt.Printf("aborts              %d (deadlock victims retried: %d)\n", s.Aborts, s.Deadlocks)
	fmt.Printf("lock grants/blocks  %d / %d\n", s.Lock.Grants, s.Lock.Blocks)
	fmt.Printf("lock escalations    %d\n", s.Escalations)
	fmt.Printf("total balance       %d (initial %d)\n", total, initial)
	if total != initial {
		log.Fatal("CONSISTENCY VIOLATED")
	}
	fmt.Println("\nTotal conserved under concurrent transfers, range audits and full")
	fmt.Println("scans: two-phase multigranularity locking at work. Try -granule 1")
	fmt.Println("(tuple locks: more grants, fewer blocks) vs -granule 200 (one")
	fmt.Println("granule: transfers serialize) to feel the paper's trade-off.")
}
