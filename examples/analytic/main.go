// Analytic: compare the closed-form MVA approximation against the
// discrete-event simulation across the granularity sweep. The analytic
// model answers "roughly where is the optimum?" in microseconds; the
// simulation is the ground truth it is validated against.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"granulock"
)

func main() {
	tmax := flag.Float64("tmax", 1000, "simulated time units per point")
	npros := flag.Int("npros", 10, "number of processors")
	flag.Parse()

	p := granulock.DefaultParams()
	p.NPros = *npros
	p.TMax = *tmax

	fmt.Printf("npros=%d, maxtransize=%d, ntrans=%d\n\n", p.NPros, p.MaxTransize, p.NTrans)
	fmt.Printf("%8s  %12s  %12s  %8s  %10s  %10s\n",
		"ltot", "simulated", "analytic", "ratio", "pred.block", "pred.activ")

	simStart := time.Now()
	var simTotal, anaTotal time.Duration
	for _, ltot := range []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000} {
		q := p
		q.Ltot = ltot

		s0 := time.Now()
		m, err := granulock.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		simTotal += time.Since(s0)

		a0 := time.Now()
		pred, err := granulock.Predict(q)
		if err != nil {
			log.Fatal(err)
		}
		anaTotal += time.Since(a0)

		ratio := 0.0
		if m.Throughput > 0 {
			ratio = pred.Throughput / m.Throughput
		}
		fmt.Printf("%8d  %12.4f  %12.4f  %8.2f  %10.3f  %10.2f\n",
			ltot, m.Throughput, pred.Throughput, ratio, pred.BlockProbability, pred.MeanActive)
	}
	_ = simStart

	simBest, _, err := granulock.OptimalGranularity(p)
	if err != nil {
		log.Fatal(err)
	}
	anaBest, _, err := granulock.PredictOptimalGranularity(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal granularity: simulated %d, analytic %d\n", simBest, anaBest)
	fmt.Printf("cost of the full sweep: simulation %v, analytic %v\n", simTotal, anaTotal)
	fmt.Println("\nThe analytic model ignores lock-manager serialization and fork-join")
	fmt.Println("skew, so it is optimistic at entity-level granularity — but it finds")
	fmt.Println("the same optimum region orders of magnitude faster.")
}
