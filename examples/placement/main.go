// Placement: compare the best, random and worst granule-placement
// strategies of §3.5 for small and large transactions, and show the
// paper's conclusion that for randomly accessed data either very coarse
// or entity-level granularity wins, while the in-between loses.
package main

import (
	"flag"
	"fmt"
	"log"

	"granulock"
)

func main() {
	tmax := flag.Float64("tmax", 500, "simulated time units per point")
	flag.Parse()

	placements := []struct {
		name string
		p    granulock.Placement
	}{
		{"best", granulock.PlacementBest},
		{"random", granulock.PlacementRandom},
		{"worst", granulock.PlacementWorst},
	}
	ltots := []int{1, 10, 25, 100, 250, 1000, 5000}

	for _, size := range []int{500, 50} {
		fmt.Printf("== maxtransize=%d (mean transaction ~ %d entities), npros=30 ==\n",
			size, size/2)
		fmt.Printf("%8s", "ltot")
		for _, pl := range placements {
			fmt.Printf("  %10s", pl.name)
		}
		fmt.Println()
		for _, ltot := range ltots {
			fmt.Printf("%8d", ltot)
			for _, pl := range placements {
				p := granulock.DefaultParams()
				p.NPros = 30
				p.MaxTransize = size
				p.Ltot = ltot
				p.Placement = pl.p
				p.TMax = *tmax
				m, err := granulock.Run(p)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %10.4f", m.Throughput)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	fmt.Println("Against the paper's §3.5:")
	fmt.Println(" * best placement (sequential access) peaks at a moderate granularity;")
	fmt.Println(" * worst/random placement loses throughput as locks grow toward the")
	fmt.Println("   mean transaction size (more locks per transaction, no concurrency")
	fmt.Println("   gained), then recovers toward entity-level locking;")
	fmt.Println(" * for small random transactions, fine granularity (one lock per")
	fmt.Println("   entity) is the right choice — the paper's lightly-loaded-system")
	fmt.Println("   conclusion.")
}
