// Realdb: drive the executable shared-nothing mini-DBMS (real
// goroutines, a real granule lock table) across a range of granule
// counts and locking protocols, cross-validating the simulation's
// conclusions on live concurrency: coarse granularity forces blocking,
// fine granularity removes it, and the conservative protocol never
// deadlocks while claim-as-needed detects and retries.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"granulock/internal/engine"
)

func main() {
	workers := flag.Int("workers", 8, "closed population of worker goroutines")
	txns := flag.Int("txns", 300, "transactions per worker")
	work := flag.Int("work", 20000, "synthetic lock-holding computation per transaction")
	flag.Parse()

	fmt.Println("granules  protocol          committed   blocked  deadlock-retries  tps")
	for _, granules := range []int{1, 10, 100, 1000} {
		for _, protocol := range []engine.Protocol{engine.Conservative, engine.ClaimAsNeeded, engine.Hierarchical} {
			db, err := engine.Open(1000,
				engine.WithNodes(4),
				engine.WithGranules(granules),
				engine.WithProtocol(protocol),
				engine.WithInitialValue(100),
				engine.WithEscalationThreshold(16))
			if err != nil {
				log.Fatal(err)
			}
			before := db.TotalBalance()
			res, err := db.RunClosed(context.Background(), engine.Workload{
				Workers:         *workers,
				TxnsPerWorker:   *txns,
				TransfersPerTxn: 2,
				ReadFraction:    0.2,
				WorkPerTxn:      *work,
				Seed:            1,
			})
			if err != nil {
				log.Fatal(err)
			}
			if after := db.TotalBalance(); after != before {
				log.Fatalf("CONSISTENCY VIOLATED: balance %d -> %d", before, after)
			}
			s := db.Stats()
			extra := ""
			if s.Escalations > 0 {
				extra = fmt.Sprintf("  (escalations: %d)", s.Escalations)
			}
			fmt.Printf("%8d  %-16s  %9d  %8d  %16d  %.0f%s\n",
				granules, protocol, res.Committed, s.Lock.Blocks, s.DeadlockRetries, res.ThroughputTPS, extra)
		}
	}
	fmt.Println("\nEvery run preserved the total balance: locking kept the database")
	fmt.Println("consistent under concurrent funds transfers (the §1 motivating")
	fmt.Println("example). Blocking falls sharply as granules increase — the same")
	fmt.Println("concurrency effect the simulation model quantifies.")
}
