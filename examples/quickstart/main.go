// Quickstart: run the paper's base configuration once, inspect the
// output parameters, and ask the library for the throughput-optimal
// locking granularity.
package main

import (
	"fmt"
	"log"

	"granulock"
)

func main() {
	// The paper's Table 1 configuration: a 5000-entity database, 10
	// terminals, I/O-bound transactions averaging 250 entities.
	p := granulock.DefaultParams()
	p.NPros = 10 // ten processors, each with a private CPU and disk
	p.Ltot = 100 // one hundred lockable granules
	p.Seed = 42

	m, err := granulock.Run(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== one run, npros=10, ltot=100 ==")
	fmt.Printf("completed transactions  %d\n", m.TotCom)
	fmt.Printf("throughput              %.4f txn/time unit\n", m.Throughput)
	fmt.Printf("mean response time      %.2f time units\n", m.MeanResponse)
	fmt.Printf("lock overhead           %.1f CPU + %.1f I/O time units\n", m.LockCPUs, m.LockIOs)
	fmt.Printf("lock requests denied    %.1f%%\n", 100*m.DenialRate)
	fmt.Printf("attained concurrency    %.2f active transactions\n", m.MeanActive)

	// Replicated runs quantify the simulation noise.
	rep, err := granulock.RunReplicated(p, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== five replications ==")
	fmt.Printf("throughput              %.4f ± %.4f (95%% CI)\n",
		rep.Throughput.Mean, rep.Throughput.CI95)
	fmt.Printf("response time           %.2f ± %.2f\n",
		rep.MeanResponse.Mean, rep.MeanResponse.CI95)

	// The tuning question the paper answers: how many granules should
	// this system have?
	best, curve, err := granulock.OptimalGranularity(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== granularity curve ==")
	fmt.Printf("%8s  %10s  %10s\n", "ltot", "throughput", "response")
	for _, pt := range curve {
		marker := "  "
		if pt.Ltot == best {
			marker = "<- optimum"
		}
		fmt.Printf("%8d  %10.4f  %10.2f %s\n", pt.Ltot, pt.Throughput, pt.MeanResponse, marker)
	}
	fmt.Printf("\nthroughput-optimal number of locks: %d (of a possible %d)\n", best, p.DBSize)
}
