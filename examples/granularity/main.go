// Granularity: reproduce the shape of the paper's Figure 2 — throughput
// and response time as a function of the number of locks for several
// machine sizes — and render it as tables and ASCII charts.
//
// Flags shorten or lengthen the runs:
//
//	go run ./examples/granularity -tmax 500 -reps 1
package main

import (
	"flag"
	"fmt"
	"log"

	"granulock"
)

func main() {
	tmax := flag.Float64("tmax", 500, "simulated time units per point")
	reps := flag.Int("reps", 1, "replications per point")
	flag.Parse()

	fmt.Println(granulock.Table1())

	fig, err := granulock.RunFigure("fig2", granulock.Options{
		TMax:         *tmax,
		Replications: *reps,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(granulock.RenderText(fig))

	fmt.Println("Reading the output against the paper's §3.1:")
	fmt.Println(" * each curve is convex: throughput rises with the first few locks,")
	fmt.Println("   then falls as lock management overhead dominates;")
	fmt.Println(" * the optimum stays below ~200 locks even with 30 processors;")
	fmt.Println(" * larger machines gain more from granularity and lose more when it")
	fmt.Println("   is mistuned;")
	fmt.Println(" * response-time curves flatten as processors are added.")
}
