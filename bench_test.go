// Package granulock_test holds the benchmark harness regenerating every
// table and figure of the paper's evaluation section, plus ablation
// benchmarks for the design choices called out in DESIGN.md.
//
// Each figure benchmark runs the corresponding experiment sweep at a
// reduced horizon (the shapes are stable well before the paper's
// tmax=1000) and reports, as custom metrics, the quantities the paper's
// discussion hinges on — e.g. the throughput at the optimum versus at
// the extremes. Regenerate the full-resolution artifacts with:
//
//	go run ./cmd/figures -out results
package granulock_test

import (
	"context"
	"testing"

	"granulock"
	"granulock/internal/engine"
)

// benchOpts keeps figure benchmarks affordable while preserving shapes.
func benchOpts() granulock.Options {
	return granulock.Options{TMax: 250, Seed: 1, Replications: 1}
}

// figureBench runs one figure per iteration and reports headline
// metrics extracted by report.
func figureBench(b *testing.B, id string, report func(b *testing.B, f granulock.Figure)) {
	b.Helper()
	var last granulock.Figure
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Seed = uint64(i + 1)
		f, err := granulock.RunFigure(id, o)
		if err != nil {
			b.Fatal(err)
		}
		last = f
	}
	report(b, last)
}

// seriesPeak returns the maximum y and its x for one series of a panel.
func seriesPeak(f granulock.Figure, panel int, series string) (x, y float64) {
	p := f.Panels[panel]
	for _, s := range p.Series {
		if s.Label != series {
			continue
		}
		for _, pt := range s.Points {
			if v := p.Metric(pt.M); v > y {
				x, y = pt.X, v
			}
		}
	}
	return x, y
}

// seriesAt returns the y value of one series at x.
func seriesAt(f granulock.Figure, panel int, series string, x float64) float64 {
	p := f.Panels[panel]
	for _, s := range p.Series {
		if s.Label != series {
			continue
		}
		for _, pt := range s.Points {
			if pt.X == x {
				return p.Metric(pt.M)
			}
		}
	}
	return 0
}

func BenchmarkTable1Baseline(b *testing.B) {
	// Table 1 defines the base configuration; this bench runs it as-is.
	p := granulock.DefaultParams()
	p.TMax = 250
	var m granulock.Metrics
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		var err error
		if m, err = granulock.Run(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Throughput, "throughput")
	b.ReportMetric(m.MeanResponse, "response")
}

func BenchmarkFigure2(b *testing.B) {
	figureBench(b, "fig2", func(b *testing.B, f granulock.Figure) {
		optX1, opt1 := seriesPeak(f, 0, "npros=1")
		optX30, opt30 := seriesPeak(f, 0, "npros=30")
		b.ReportMetric(opt1, "peak-thr-npros1")
		b.ReportMetric(opt30, "peak-thr-npros30")
		b.ReportMetric(optX1, "opt-ltot-npros1")
		b.ReportMetric(optX30, "opt-ltot-npros30")
	})
}

func BenchmarkFigure3(b *testing.B) {
	figureBench(b, "fig3", func(b *testing.B, f granulock.Figure) {
		_, io1 := seriesPeak(f, 0, "npros=1")
		_, io30 := seriesPeak(f, 0, "npros=30")
		b.ReportMetric(io1, "peak-usefulio-npros1")
		b.ReportMetric(io30, "peak-usefulio-npros30")
	})
}

func BenchmarkFigure4(b *testing.B) {
	figureBench(b, "fig4", func(b *testing.B, f granulock.Figure) {
		b.ReportMetric(seriesAt(f, 0, "npros=30", 1), "lockovh-ltot1")
		b.ReportMetric(seriesAt(f, 0, "npros=30", 5000), "lockovh-ltot5000")
	})
}

func BenchmarkFigure5(b *testing.B) {
	figureBench(b, "fig5", func(b *testing.B, f granulock.Figure) {
		b.ReportMetric(seriesAt(f, 0, "npros=30", 1), "lockovh-ltot1")
		b.ReportMetric(seriesAt(f, 0, "npros=30", 5000), "lockovh-ltot5000")
	})
}

func BenchmarkFigure6(b *testing.B) {
	figureBench(b, "fig6", func(b *testing.B, f granulock.Figure) {
		xSmall, peakSmall := seriesPeak(f, 0, "maxtransize=50")
		xLarge, peakLarge := seriesPeak(f, 0, "maxtransize=5000")
		b.ReportMetric(peakSmall, "peak-thr-small")
		b.ReportMetric(peakLarge, "peak-thr-large")
		b.ReportMetric(xSmall, "opt-ltot-small")
		b.ReportMetric(xLarge, "opt-ltot-large")
	})
}

func BenchmarkFigure7(b *testing.B) {
	figureBench(b, "fig7", func(b *testing.B, f granulock.Figure) {
		_, peakDisk := seriesPeak(f, 0, "lock I/O time = I/O time (0.2)")
		_, peakMem := seriesPeak(f, 0, "lock I/O time = 0 (in-memory)")
		b.ReportMetric(peakDisk, "peak-thr-disklocks")
		b.ReportMetric(peakMem, "peak-thr-memlocks")
		// The paper: in-memory locks let fine granularity stop hurting.
		b.ReportMetric(seriesAt(f, 0, "lock I/O time = 0 (in-memory)", 5000), "thr-mem-ltot5000")
	})
}

func BenchmarkFigure8(b *testing.B) {
	figureBench(b, "fig8", func(b *testing.B, f granulock.Figure) {
		_, peak := seriesPeak(f, 0, "npros=30")
		b.ReportMetric(peak, "peak-thr-npros30-random")
	})
}

func BenchmarkFigure9(b *testing.B) {
	figureBench(b, "fig9", func(b *testing.B, f granulock.Figure) {
		best := "best placement, npros=30"
		worst := "worst placement, npros=30"
		_, peakBest := seriesPeak(f, 0, best)
		b.ReportMetric(peakBest, "peak-thr-best")
		b.ReportMetric(seriesAt(f, 0, worst, 1), "thr-worst-ltot1")
		b.ReportMetric(seriesAt(f, 0, worst, 200), "thr-worst-ltot200")
	})
}

func BenchmarkFigure10(b *testing.B) {
	figureBench(b, "fig10", func(b *testing.B, f granulock.Figure) {
		worst := "worst placement, npros=30"
		b.ReportMetric(seriesAt(f, 0, worst, 20), "thr-worst-ltot20")
		b.ReportMetric(seriesAt(f, 0, worst, 5000), "thr-worst-ltot5000")
	})
}

func BenchmarkFigure11(b *testing.B) {
	figureBench(b, "fig11", func(b *testing.B, f granulock.Figure) {
		b.ReportMetric(seriesAt(f, 0, "best placement", 5000), "thr-mix-best-ltot5000")
		b.ReportMetric(seriesAt(f, 0, "worst placement", 5000), "thr-mix-worst-ltot5000")
	})
}

func BenchmarkFigure12(b *testing.B) {
	figureBench(b, "fig12", func(b *testing.B, f granulock.Figure) {
		best := "best placement"
		b.ReportMetric(seriesAt(f, 0, best, 10), "thr-heavy-ltot10")
		b.ReportMetric(seriesAt(f, 0, best, 5000), "thr-heavy-ltot5000")
	})
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationRequeue compares head vs tail re-queueing of released
// transactions, a detail the paper leaves unspecified.
func BenchmarkAblationRequeue(b *testing.B) {
	run := func(b *testing.B, tail bool) {
		p := granulock.DefaultParams()
		p.TMax = 250
		p.Ltot = 5 // plenty of blocking so the policy matters
		p.ReleasedToTail = tail
		var m granulock.Metrics
		for i := 0; i < b.N; i++ {
			p.Seed = uint64(i + 1)
			var err error
			if m, err = granulock.Run(p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(m.Throughput, "throughput")
		b.ReportMetric(m.MeanResponse, "response")
	}
	b.Run("head", func(b *testing.B) { run(b, false) })
	b.Run("tail", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationLockSharing compares the paper's shared lock work
// against funnelling all lock processing through one processor.
func BenchmarkAblationLockSharing(b *testing.B) {
	run := func(b *testing.B, dedicated bool) {
		p := granulock.DefaultParams()
		p.TMax = 250
		p.NPros = 30
		p.Ltot = 200
		p.DedicatedLockProcessor = dedicated
		var m granulock.Metrics
		for i := 0; i < b.N; i++ {
			p.Seed = uint64(i + 1)
			var err error
			if m, err = granulock.Run(p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(m.Throughput, "throughput")
	}
	b.Run("shared", func(b *testing.B) { run(b, false) })
	b.Run("dedicated", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationScheduling shows transaction-level scheduling
// rescuing fine granularity under heavy load (§3.7).
func BenchmarkAblationScheduling(b *testing.B) {
	run := func(b *testing.B, mk func() granulock.Scheduler) {
		p := granulock.DefaultParams()
		p.TMax = 250
		p.NTrans = 200
		p.NPros = 20
		p.Ltot = 5000
		var m granulock.Metrics
		for i := 0; i < b.N; i++ {
			p.Seed = uint64(i + 1)
			if mk != nil {
				p.Scheduler = mk()
			}
			var err error
			if m, err = granulock.Run(p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(m.Throughput, "throughput")
		b.ReportMetric(m.DenialRate, "denialrate")
	}
	b.Run("unlimited", func(b *testing.B) { run(b, nil) })
	b.Run("mpl2", func(b *testing.B) {
		run(b, func() granulock.Scheduler { return granulock.FixedMPL(2) })
	})
	b.Run("mpl8", func(b *testing.B) {
		run(b, func() granulock.Scheduler { return granulock.FixedMPL(8) })
	})
	b.Run("adaptive", func(b *testing.B) {
		run(b, func() granulock.Scheduler {
			s, err := granulock.AdaptiveMPL(1, 200, 20, 0.3)
			if err != nil {
				b.Fatal(err)
			}
			return s
		})
	})
}

// BenchmarkAblationClaimAsNeeded compares the two real locking protocols
// on the executable engine (footnote 1 of the paper).
func BenchmarkAblationClaimAsNeeded(b *testing.B) {
	run := func(b *testing.B, protocol engine.Protocol) {
		db, err := engine.Open(1000,
			engine.WithNodes(4),
			engine.WithGranules(100),
			engine.WithProtocol(protocol),
			engine.WithInitialValue(100))
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Execute(ctx, engine.Transfer(i%1000, (i*7+1)%1000, 1)); err != nil {
				b.Fatal(err)
			}
		}
		s := db.Stats()
		b.ReportMetric(float64(s.DeadlockRetries), "deadlock-retries")
	}
	b.Run("conservative", func(b *testing.B) { run(b, engine.Conservative) })
	b.Run("claim-as-needed", func(b *testing.B) { run(b, engine.ClaimAsNeeded) })
}

// BenchmarkGranularityCurve prices one full tuning sweep through the
// public API.
func BenchmarkGranularityCurve(b *testing.B) {
	p := granulock.DefaultParams()
	p.TMax = 200
	var best int
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		var err error
		if best, _, err = granulock.OptimalGranularity(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(best), "optimal-ltot")
}
